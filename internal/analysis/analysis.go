// Package analysis is the repository's static-analysis suite: a small
// go/analysis-shaped framework plus the four plmvet analyzers that turn the
// paper's exactness-and-consistency contract into machine-checked rules.
//
// The reproduction's headline guarantee — the closed-form (W, b) extracted
// for a linear region is bit-identical to the hidden model's decision
// function — survives only while every layer of the system preserves it:
// the GEMM kernels must keep one ascending-k accumulator per output
// element, nothing on the bit-identity paths may consult ambient
// nondeterminism (wall clock, global RNG, fused multiply-add), ordered
// output must never be derived from map iteration, and the serving stack's
// counters and locks must stay race-free under load. PRs 3–5 defended
// those invariants with parity tests and hand-picked -race runs; the
// analyzers here prove them on every diff instead.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the passes read like standard vet checks
// and could be ported to the real framework wholesale; it is reimplemented
// on the standard library alone because this repository builds offline with
// no module dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. It is the stdlib-only analogue of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //plmvet:allow(name) annotations.
	Name string
	// Doc is the one-paragraph description printed by plmvet -help.
	Doc string
	// Run performs the check over one package and reports findings via
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass hands one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file a position belongs to is a _test.go
// file. The plmvet contracts govern shipped code; tests are free to use
// clocks, global randomness and manual lock choreography.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Diagnostic is one finding: a position and a human-readable message. The
// reporting analyzer's name is attached by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated. All three drivers (standalone, vet-tool, test harness) share
// it so an analyzer never finds a nil map in one mode that was populated in
// another.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// All returns the plmvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detfloat, Atomicfield, Lockheld, Kernelpurity}
}

// ByName resolves a comma-separated analyzer selection ("detfloat,lockheld")
// against the suite; an empty selection means all of them.
func ByName(selection string) ([]*Analyzer, error) {
	if selection == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving diagnostics: findings suppressed by a //plmvet:allow annotation
// (see allow.go) are dropped, and every kept diagnostic carries its
// analyzer's name.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	allows := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if allows.allowed(fset, d) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	return out, nil
}
