package plm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func testLinear(t *testing.T) *Linear {
	t.Helper()
	w := mat.FromRows(
		mat.Vec{1, 2, 3},
		mat.Vec{0, -1, 1},
		mat.Vec{2, 0, -2},
	)
	l, err := NewLinear(w, mat.Vec{0.5, -0.5, 0}, "r1")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLinearValidation(t *testing.T) {
	if _, err := NewLinear(nil, nil, ""); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := NewLinear(mat.NewDense(2, 3), mat.Vec{1}, ""); err == nil {
		t.Fatal("bias mismatch accepted")
	}
	if _, err := NewLinear(mat.NewDense(1, 3), mat.Vec{1}, ""); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestLinearLogits(t *testing.T) {
	l := testLinear(t)
	x := mat.Vec{1, 1, 1}
	got := l.Logits(x)
	want := mat.Vec{6.5, -0.5, 0}
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("logits = %v, want %v", got, want)
	}
	if l.Classes() != 3 || l.Dim() != 3 {
		t.Fatal("shape accessors wrong")
	}
}

func TestCoreParamsIdentity(t *testing.T) {
	// The log-odds identity D^T x + B = ln(yc/yc') must hold exactly for
	// softmax probabilities computed from the logits.
	l := testLinear(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := mat.Vec{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		z := l.Logits(x)
		p := softmax(z)
		for c := 0; c < 3; c++ {
			for cp := 0; cp < 3; cp++ {
				if c == cp {
					continue
				}
				d, b := l.CoreParams(c, cp)
				lhs := d.Dot(x) + b
				rhs := LogOdds(p, c, cp)
				if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
					t.Fatalf("identity violated: %v vs %v", lhs, rhs)
				}
			}
		}
	}
}

func softmax(z mat.Vec) mat.Vec {
	m := z.Max()
	out := make(mat.Vec, len(z))
	var sum float64
	for i, v := range z {
		out[i] = math.Exp(v - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func TestDecisionFeaturesAgainstBruteForce(t *testing.T) {
	l := testLinear(t)
	for c := 0; c < 3; c++ {
		want := mat.NewVec(3)
		for cp := 0; cp < 3; cp++ {
			if cp == c {
				continue
			}
			d, _ := l.CoreParams(c, cp)
			want.AddInPlace(d)
		}
		want.ScaleInPlace(0.5)
		if got := l.DecisionFeatures(c); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("class %d: %v vs %v", c, got, want)
		}
	}
}

func TestDecisionFeaturesSumToZero(t *testing.T) {
	// Σ_c D_c = 0 because each pair difference appears with both signs.
	l := testLinear(t)
	sum := mat.NewVec(3)
	for c := 0; c < 3; c++ {
		sum.AddInPlace(l.DecisionFeatures(c))
	}
	if sum.NormInf() > 1e-12 {
		t.Fatalf("decision features do not cancel: %v", sum)
	}
}

func TestDecisionFeaturesShiftInvariant(t *testing.T) {
	// Adding the same row vector to every class weight must not change D_c
	// (softmax logits are defined up to a shared shift).
	l := testLinear(t)
	shift := mat.Vec{5, -3, 2}
	w2 := l.W.Clone()
	for r := 0; r < w2.Rows(); r++ {
		w2.RawRow(r).AddInPlace(shift)
	}
	l2, err := NewLinear(w2, l.B.Clone(), "")
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if !l.DecisionFeatures(c).EqualApprox(l2.DecisionFeatures(c), 1e-12) {
			t.Fatalf("class %d decision features changed under logit shift", c)
		}
	}
}

func TestDecisionBias(t *testing.T) {
	l := testLinear(t)
	// class 0: ((0.5 - (-0.5)) + (0.5 - 0)) / 2 = 0.75
	if got := l.DecisionBias(0); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("DecisionBias(0) = %v", got)
	}
}

func TestCheckClassPanics(t *testing.T) {
	l := testLinear(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.DecisionFeatures(3)
}

func TestLogOddsSaturation(t *testing.T) {
	p := mat.Vec{1, 0} // fully saturated
	lo := LogOdds(p, 0, 1)
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		t.Fatalf("LogOdds saturated to %v", lo)
	}
	if lo <= 100 {
		t.Fatalf("LogOdds of saturated prediction should be very large, got %v", lo)
	}
	if got := LogOdds(p, 1, 0); got != -lo {
		t.Fatalf("antisymmetry broken: %v vs %v", got, -lo)
	}
	if got := LogOdds(mat.Vec{0.5, 0.5}, 0, 1); got != 0 {
		t.Fatalf("equal probabilities should give 0, got %v", got)
	}
}

// Property: for random Linears, two-class decision features reduce to the
// single pair difference (C=2 special case the paper starts from).
func TestPropertyTwoClassDecisionFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(d8 uint8) bool {
		d := int(d8%8) + 1
		w := mat.NewDense(2, d)
		for r := 0; r < 2; r++ {
			for c := 0; c < d; c++ {
				w.Set(r, c, rng.NormFloat64())
			}
		}
		l, err := NewLinear(w, mat.Vec{rng.NormFloat64(), rng.NormFloat64()}, "")
		if err != nil {
			return false
		}
		d01, _ := l.CoreParams(0, 1)
		return l.DecisionFeatures(0).EqualApprox(d01, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
