package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestReLU(t *testing.T) {
	got := ReLU(mat.Vec{-1, 0, 2})
	if got[0] != 0 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("ReLU = %v", got)
	}
}

func TestReLUMask(t *testing.T) {
	m := ReLUMask(mat.Vec{-1, 0, 2})
	if m[0] || m[1] || !m[2] {
		t.Fatalf("mask = %v", m)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax(mat.Vec{1, 2, 3})
	if !almost(p.Sum(), 1, 1e-12) {
		t.Fatalf("sum = %v", p.Sum())
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("ordering lost: %v", p)
	}
}

func TestSoftmaxStableForHugeLogits(t *testing.T) {
	p := Softmax(mat.Vec{1e4, 1e4 + 1})
	if p.HasNaN() {
		t.Fatalf("softmax overflow: %v", p)
	}
	if !almost(p.Sum(), 1, 1e-12) {
		t.Fatalf("sum = %v", p.Sum())
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	if got := Softmax(mat.Vec{}); len(got) != 0 {
		t.Fatalf("Softmax(empty) = %v", got)
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	z := mat.Vec{0.3, -1.2, 2.5}
	p := Softmax(z)
	lp := LogSoftmax(z)
	for i := range z {
		if !almost(lp[i], math.Log(p[i]), 1e-10) {
			t.Fatalf("LogSoftmax[%d] = %v, want %v", i, lp[i], math.Log(p[i]))
		}
	}
}

func TestCrossEntropyFloor(t *testing.T) {
	if v := CrossEntropy(mat.Vec{0, 1}, 0); math.IsInf(v, 0) {
		t.Fatal("CrossEntropy of zero probability must be finite")
	}
	if v := CrossEntropy(mat.Vec{1, 0}, 0); v != 0 {
		t.Fatalf("CrossEntropy of certain prediction = %v", v)
	}
}

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 4, 8, 3)
	if n.InputDim() != 4 || n.Classes() != 3 || n.NumLayers() != 2 {
		t.Fatalf("dims: in=%d classes=%d layers=%d", n.InputDim(), n.Classes(), n.NumLayers())
	}
	if got := n.HiddenSizes(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("HiddenSizes = %v", got)
	}
	if got := n.NumParams(); got != 4*8+8+8*3+3 {
		t.Fatalf("NumParams = %d", got)
	}
}

func TestNewPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fn := range []func(){
		func() { New(rng, 4) },
		func() { New(rng, 4, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPredictIsProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(rng, 5, 7, 4)
	x := mat.Vec{0.1, -0.2, 0.3, 0.4, -0.5}
	p := n.Predict(x)
	if len(p) != 4 {
		t.Fatalf("len = %d", len(p))
	}
	if !almost(p.Sum(), 1, 1e-12) {
		t.Fatalf("sum = %v", p.Sum())
	}
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
	}
	if n.PredictLabel(x) != p.ArgMax() {
		t.Fatal("PredictLabel disagrees with argmax of Predict")
	}
}

func TestForwardPanicsOnWrongDim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Predict(mat.Vec{1, 2})
}

func TestFromLayersValidation(t *testing.T) {
	w1 := mat.FromRows(mat.Vec{1, 0}, mat.Vec{0, 1})
	good := Layer{W: w1, B: mat.Vec{0, 0}}
	n := FromLayers(good, Layer{W: mat.FromRows(mat.Vec{1, 1}), B: mat.Vec{0}})
	if n.Classes() != 1 || n.InputDim() != 2 {
		t.Fatal("FromLayers shapes wrong")
	}
	for _, fn := range []func(){
		func() { FromLayers() },
		func() { FromLayers(Layer{W: w1, B: mat.Vec{0}}) }, // bias mismatch
		func() { // chain mismatch
			FromLayers(good, Layer{W: mat.FromRows(mat.Vec{1, 1, 1}), B: mat.Vec{0}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromLayersClones(t *testing.T) {
	w := mat.FromRows(mat.Vec{1, 2})
	b := mat.Vec{3}
	n := FromLayers(Layer{W: w, B: b})
	w.Set(0, 0, 99)
	b[0] = 99
	l := n.Layer(0)
	if l.W.At(0, 0) != 1 || l.B[0] != 3 {
		t.Fatal("FromLayers aliased caller data")
	}
}

func TestActivationPatternLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New(rng, 6, 10, 5, 3)
	pat := n.ActivationPattern(mat.NewVec(6).Fill(0.5))
	if len(pat) != 15 {
		t.Fatalf("pattern length = %d, want 15", len(pat))
	}
}

// A hand-built network where the locally linear behaviour is known exactly:
// one hidden layer, identity-ish weights.
func handNet() *Network {
	// hidden: z1 = [x0 - x1, x0 + x1], ReLU
	w1 := mat.FromRows(mat.Vec{1, -1}, mat.Vec{1, 1})
	// output: two classes, z2 = [a0, a1]
	w2 := mat.FromRows(mat.Vec{1, 0}, mat.Vec{0, 1})
	return FromLayers(
		Layer{W: w1, B: mat.Vec{0, 0}},
		Layer{W: w2, B: mat.Vec{0, 0}},
	)
}

func TestHandNetworkLogits(t *testing.T) {
	n := handNet()
	// x = (2, 1): z1 = (1, 3), both active, logits = (1, 3).
	got := n.Logits(mat.Vec{2, 1})
	if !got.EqualApprox(mat.Vec{1, 3}, 1e-15) {
		t.Fatalf("logits = %v", got)
	}
	// x = (1, 2): z1 = (-1, 3) -> ReLU (0, 3), logits = (0, 3).
	got = n.Logits(mat.Vec{1, 2})
	if !got.EqualApprox(mat.Vec{0, 3}, 1e-15) {
		t.Fatalf("logits = %v", got)
	}
}

func TestInputGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := New(rng, 4, 6, 3)
	x := mat.Vec{0.3, -0.1, 0.7, 0.2}
	const h = 1e-6
	for c := 0; c < 3; c++ {
		g := n.InputGradient(x, c)
		for i := range x {
			xp, xm := x.Clone(), x.Clone()
			xp[i] += h
			xm[i] -= h
			fd := (n.Logits(xp)[c] - n.Logits(xm)[c]) / (2 * h)
			if math.Abs(fd-g[i]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("class %d dim %d: grad %v vs fd %v", c, i, g[i], fd)
			}
		}
	}
}

func TestInputGradientBadClassPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := New(rng, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.InputGradient(mat.Vec{0, 0}, 5)
}

func TestAccuracy(t *testing.T) {
	n := handNet()
	xs := []mat.Vec{{2, 1}, {1, 2}} // labels by construction: argmax class 1 in both
	if acc := n.Accuracy(xs, []int{1, 1}); acc != 1 {
		t.Fatalf("acc = %v", acc)
	}
	if acc := n.Accuracy(xs, []int{0, 1}); acc != 0.5 {
		t.Fatalf("acc = %v", acc)
	}
	if acc := n.Accuracy(nil, nil); acc != 0 {
		t.Fatalf("empty acc = %v", acc)
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := New(rng, 3, 4, 2)
	c := n.Clone()
	x := mat.Vec{0.1, 0.2, 0.3}
	before := n.Logits(x)
	// Mutate the clone's first layer.
	cl := c.layers[0]
	cl.W.Set(0, 0, cl.W.At(0, 0)+10)
	after := n.Logits(x)
	if !before.EqualApprox(after, 0) {
		t.Fatal("mutating clone changed original")
	}
}

// Property: softmax output is shift invariant: softmax(z) == softmax(z + k).
func TestPropertySoftmaxShiftInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(n8 uint8, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			shift = 7
		}
		c := int(n8%8) + 2
		z := make(mat.Vec, c)
		for i := range z {
			z[i] = rng.NormFloat64() * 3
		}
		zs := z.Clone()
		for i := range zs {
			zs[i] += shift
		}
		return Softmax(z).EqualApprox(Softmax(zs), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the PLNN is exactly locally linear — for two points with the
// same activation pattern, logits(midpoint) equals the affine interpolation.
func TestPropertyLocalLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := New(rng, 5, 8, 4, 3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make(mat.Vec, 5)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		// A tiny perturbation almost surely stays in the same region.
		y := x.Clone()
		for i := range y {
			y[i] += 1e-9 * r.NormFloat64()
		}
		px := n.ActivationPattern(x)
		py := n.ActivationPattern(y)
		for i := range px {
			if px[i] != py[i] {
				return true // different region: vacuously fine
			}
		}
		mid := x.Add(y).ScaleInPlace(0.5)
		want := n.Logits(x).Add(n.Logits(y)).ScaleInPlace(0.5)
		return n.Logits(mid).EqualApprox(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
