package repro

// One benchmark per table and figure of the paper, plus the ablations from
// DESIGN.md §3. Each benchmark regenerates (a scaled-down version of) the
// corresponding artifact and reports the headline metric via ReportMetric,
// so `go test -bench=. -benchmem` doubles as a smoke reproduction.

import (
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/interpret/gradient"
	"repro/internal/lmt"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

var (
	benchOnce sync.Once
	benchW    *eval.Workbench
)

// benchWorkbench builds one small workbench shared by every benchmark.
func benchWorkbench(b *testing.B) *eval.Workbench {
	b.Helper()
	benchOnce.Do(func() {
		w, err := eval.NewWorkbench(eval.WorkbenchConfig{
			Dataset:  "fmnist",
			Size:     10,
			PerClass: 50,
			NNEpochs: 15,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchW = w
	})
	return benchW
}

func benchInstances(b *testing.B, w *eval.Workbench, n int) []mat.Vec {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	return w.Test.Subset(w.SampleTestInstances(rng, n), "bench").X
}

// --- Table I ---------------------------------------------------------------

func BenchmarkTable1_TrainPLNN(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := dataset.SyntheticDigits(rng, dataset.SynthConfig{Size: 10, PerClass: 30})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		net := nn.New(r, data.Dim(), 32, 16, data.Classes())
		if _, err := net.Train(r, data.X, data.Y, nn.TrainConfig{Epochs: 5}); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(net.Accuracy(data.X, data.Y), "train-acc")
		}
	}
}

func BenchmarkTable1_TrainLMT(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := dataset.SyntheticDigits(rng, dataset.SynthConfig{Size: 10, PerClass: 30})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		tree, err := lmt.Train(r, data.X, data.Y, data.Classes(), lmt.Config{
			MinLeaf: 60, MaxDepth: 5, LogReg: lmt.LogRegConfig{Epochs: 30},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tree.Accuracy(data.X, data.Y), "train-acc")
		}
	}
}

// --- Figure 2 ----------------------------------------------------------------

func BenchmarkFigure2_ClassHeatmaps(b *testing.B) {
	w := benchWorkbench(b)
	o := core.New(core.Config{Seed: 4})
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure2(w, o, []int{0, 1}, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3 ----------------------------------------------------------------

func BenchmarkFigure3_FlipCurves(b *testing.B) {
	w := benchWorkbench(b)
	xs := benchInstances(b, w, 3)
	methods := []plm.Interpreter{
		core.New(core.Config{Seed: 6}),
		gradient.New(w.PLNN.Net, gradient.Config{Method: gradient.Saliency}),
		gradient.New(w.PLNN.Net, gradient.Config{Method: gradient.GradientInput}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := eval.Figure3(w.PLNN, methods, xs, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(curves[0].CPP[len(curves[0].CPP)-1], "openapi-final-cpp")
		}
	}
}

// --- Figure 4 ----------------------------------------------------------------

func BenchmarkFigure4_Consistency(b *testing.B) {
	w := benchWorkbench(b)
	rng := rand.New(rand.NewSource(7))
	ids := w.SampleTestInstances(rng, 4)
	pairs, err := eval.NeighbourPairs(w, ids)
	if err != nil {
		b.Fatal(err)
	}
	methods := []plm.Interpreter{
		core.New(core.Config{Seed: 8}),
		gradient.New(w.PLNN.Net, gradient.Config{Method: gradient.GradientInput}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := eval.Figure4(w.PLNN, methods, pairs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(curves[0].CS[0], "openapi-top-cs")
		}
	}
}

// --- Figures 5-7 -------------------------------------------------------------

func benchQuality(b *testing.B, metric func(eval.QualityRow) float64, unit string) {
	w := benchWorkbench(b)
	xs := benchInstances(b, w, 3)
	methods := []plm.Interpreter{core.New(core.Config{Seed: 9})}
	methods = append(methods, eval.StandardBaselines(1e-2, 10)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.SampleQuality(w.PLNN, methods, xs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(metric(rows[0]), "openapi-"+unit)
			b.ReportMetric(metric(rows[1]), "naive-"+unit)
		}
	}
}

func BenchmarkFigure5_RegionDifference(b *testing.B) {
	benchQuality(b, func(r eval.QualityRow) float64 { return r.AvgRD }, "rd")
}

func BenchmarkFigure6_WeightDifference(b *testing.B) {
	benchQuality(b, func(r eval.QualityRow) float64 { return r.WD.Mean }, "wd")
}

func BenchmarkFigure7_L1Dist(b *testing.B) {
	benchQuality(b, func(r eval.QualityRow) float64 { return r.L1.Mean }, "l1")
}

// --- Core algorithm scaling --------------------------------------------------

func benchPLNNModel(seed int64, d int) *openbox.PLNN {
	rng := rand.New(rand.NewSource(seed))
	return &openbox.PLNN{Net: nn.New(rng, d, 2*d, d, 4)}
}

func BenchmarkOpenAPI_Interpret_d16(b *testing.B) { benchInterpretDim(b, 16) }
func BenchmarkOpenAPI_Interpret_d64(b *testing.B) { benchInterpretDim(b, 64) }
func BenchmarkOpenAPI_Interpret_d128(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	benchInterpretDim(b, 128)
}

func benchInterpretDim(b *testing.B, d int) {
	model := benchPLNNModel(11, d)
	rng := rand.New(rand.NewSource(12))
	x := make(mat.Vec, d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	o := core.New(core.Config{Seed: 13})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interp, err := o.Interpret(model, x, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(interp.Queries), "queries")
		}
	}
}

// --- Ablation A1: solver strategy ---------------------------------------------

func benchSolver(b *testing.B, solver core.Solver) {
	model := benchPLNNModel(14, 48)
	rng := rand.New(rand.NewSource(15))
	x := make(mat.Vec, 48)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	o := core.New(core.Config{Seed: 16, Solver: solver})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Interpret(model, x, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolver_SharedLU(b *testing.B)  { benchSolver(b, core.SolverSharedLU) }
func BenchmarkAblationSolver_SharedQR(b *testing.B)  { benchSolver(b, core.SolverSharedQR) }
func BenchmarkAblationSolver_PerPairLU(b *testing.B) { benchSolver(b, core.SolverPerPairLU) }

// --- Ablation A2: adaptive halving vs fixed r ---------------------------------

func BenchmarkAblationAdaptive_Interior(b *testing.B) {
	model := benchPLNNModel(17, 24)
	rng := rand.New(rand.NewSource(18))
	x := make(mat.Vec, 24)
	for i := range x {
		x[i] = rng.NormFloat64() * 3 // deep inside some region
	}
	o := core.New(core.Config{Seed: 19})
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		interp, err := o.Interpret(model, x, 0)
		if err != nil {
			b.Fatal(err)
		}
		iters = interp.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

func BenchmarkAblationAdaptive_NearBoundary(b *testing.B) {
	model := benchPLNNModel(20, 24)
	rng := rand.New(rand.NewSource(21))
	// Bisect to a point ~1e-9 from a region boundary.
	var a, c mat.Vec
	for {
		a, c = randVecBench(rng, 24), randVecBench(rng, 24)
		if model.RegionKey(a) != model.RegionKey(c) {
			break
		}
	}
	for i := 0; i < 30; i++ {
		mid := a.Add(c).ScaleInPlace(0.5)
		if model.RegionKey(mid) == model.RegionKey(a) {
			a = mid
		} else {
			c = mid
		}
	}
	o := core.New(core.Config{Seed: 22})
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		interp, err := o.Interpret(model, a, 0)
		if err != nil {
			b.Fatal(err)
		}
		iters = interp.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

func randVecBench(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// --- End-to-end over HTTP ------------------------------------------------------

func BenchmarkOpenAPI_OverHTTP(b *testing.B) {
	model := benchPLNNModel(23, 16)
	ts := httptest.NewServer(api.NewServer(model, "bench"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	x := randVecBench(rng, 16)
	o := core.New(core.Config{Seed: 25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Interpret(client, x, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := client.Err(); err != nil {
		b.Fatal(err)
	}
}

// unbatched hides a client's batch endpoint so PredictAll falls back to one
// HTTP round trip per probe.
type unbatched struct{ inner plm.Model }

func (u unbatched) Predict(x mat.Vec) mat.Vec { return u.inner.Predict(x) }
func (u unbatched) Dim() int                  { return u.inner.Dim() }
func (u unbatched) Classes() int              { return u.inner.Classes() }

func BenchmarkOpenAPI_OverHTTP_Unbatched(b *testing.B) {
	model := benchPLNNModel(31, 16)
	ts := httptest.NewServer(api.NewServer(model, "bench-unbatched"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	x := randVecBench(rng, 16)
	o := core.New(core.Config{Seed: 33})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Interpret(unbatched{client}, x, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := client.Err(); err != nil {
		b.Fatal(err)
	}
}

// --- Cross-instance query aggregation ------------------------------------------

// benchPoolOverHTTP measures the server-counted HTTP round trips a pool of 8
// concurrent interpreters costs, with per-job batching (each worker ships its
// own sample sets) versus cross-instance aggregation (an api.Aggregator
// coalesces all workers' probes into shared wire exchanges).
func benchPoolOverHTTP(b *testing.B, aggregate bool) {
	model := benchPLNNModel(34, 16)
	srv := api.NewServer(model, "bench-pool")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	xs := make([]mat.Vec, 16)
	for i := range xs {
		xs[i] = randVecBench(rng, 16)
	}
	pool := core.NewPool(core.Config{Seed: 36}, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m plm.Model = client
		var agg *api.Aggregator
		if aggregate {
			agg = api.NewAggregator(client, api.AggregatorConfig{Window: 2 * time.Millisecond})
			m = agg
		}
		for _, r := range pool.InterpretMany(m, xs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		if agg != nil {
			agg.Close()
		}
	}
	b.StopTimer()
	if err := client.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(srv.Requests())/float64(b.N), "round-trips/op")
	b.ReportMetric(float64(srv.Queries())/float64(b.N), "queries/op")
}

func BenchmarkOpenAPI_OverHTTP_Pool(b *testing.B)           { benchPoolOverHTTP(b, false) }
func BenchmarkOpenAPI_OverHTTP_AggregatedPool(b *testing.B) { benchPoolOverHTTP(b, true) }

// --- Adaptive flush window against a slow remote --------------------------------

// benchLatentRemotePool interprets a 16-instance batch with a pool of 8
// against a server with injected latency — the regime the adaptive window
// exists for. A fixed window has to be guessed per deployment: here the
// wire's real round trip is ~1ms, so the fixed 2ms default overshoots and
// every flush wave pays the full 2ms wait anyway. The adaptive window
// measures the RTT and settles at a fraction of it, flushing each wave as
// soon as its probes have realistically arrived — same round trips, less
// wall-clock per wave (and against a genuinely slow remote it grows toward
// MaxWindow instead, bounding straggler round trips without retuning).
func benchLatentRemotePool(b *testing.B, cfg api.AggregatorConfig) {
	model := benchPLNNModel(37, 16)
	srv := api.NewServer(model, "bench-latent-remote")
	srv.Latency = 750 * time.Microsecond
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(38))
	xs := make([]mat.Vec, 16)
	for i := range xs {
		xs[i] = randVecBench(rng, 16)
	}
	pool := core.NewPool(core.Config{Seed: 39}, 8)
	b.ResetTimer()
	var window time.Duration
	for i := 0; i < b.N; i++ {
		agg := api.NewAggregator(client, cfg)
		for _, r := range pool.InterpretMany(agg, xs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		agg.Close()
		window = agg.CurrentWindow()
	}
	b.StopTimer()
	if err := client.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(srv.Requests())/float64(b.N), "round-trips/op")
	b.ReportMetric(float64(window)/float64(time.Millisecond), "window-ms")
}

func BenchmarkOpenAPI_LatentRemote_FixedWindowPool(b *testing.B) {
	benchLatentRemotePool(b, api.AggregatorConfig{Window: 2 * time.Millisecond})
}

func BenchmarkOpenAPI_LatentRemote_AdaptiveWindowPool(b *testing.B) {
	benchLatentRemotePool(b, api.AggregatorConfig{Adaptive: true})
}

// --- Sharded replica serving -----------------------------------------------------

// benchShardedBatch measures server-side evaluation of one wide batch — the
// shape an aggregated pool ships — across replica counts. A single replica
// answers the batch serially; the shard router fans it out, so the speedup
// tracks the machine's core count (a single-core box shows parity).
func benchShardedBatch(b *testing.B, replicas int) {
	slots := make([]plm.Model, replicas)
	for i := range slots {
		slots[i] = benchPLNNModel(40, 64)
	}
	shard, err := api.NewShard(slots)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	xs := make([]mat.Vec, 256)
	for i := range xs {
		xs[i] = randVecBench(rng, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shard.PredictBatch(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedBatch_Replicas1(b *testing.B) { benchShardedBatch(b, 1) }
func BenchmarkShardedBatch_Replicas4(b *testing.B) { benchShardedBatch(b, 4) }

// --- Baseline probing cost -----------------------------------------------------

func BenchmarkBaseline_ZOO(b *testing.B) {
	model := benchPLNNModel(26, 48)
	rng := rand.New(rand.NewSource(27))
	x := randVecBench(rng, 48)
	z := eval.StandardBaselines(1e-6, 28)[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Interpret(model, x, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseline_LIMELinear(b *testing.B) {
	model := benchPLNNModel(29, 48)
	rng := rand.New(rand.NewSource(30))
	x := randVecBench(rng, 48)
	l := eval.StandardBaselines(1e-6, 31)[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Interpret(model, x, 0); err != nil {
			b.Fatal(err)
		}
	}
}
