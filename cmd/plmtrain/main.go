// Command plmtrain trains one of the paper's target models (a ReLU PLNN or
// a logistic model tree) on a synthetic MNIST/FMNIST stand-in — or on real
// IDX files when provided — and saves it as JSON for plmserve and openapi.
//
// Usage:
//
//	plmtrain -model plnn -dataset mnist -out plnn.json
//	plmtrain -model lmt -dataset fmnist -size 28 -per-class 700 -out lmt.json
//	plmtrain -model plnn -images train-images.idx.gz -labels train-labels.idx.gz -out plnn.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/lmt"
	"repro/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("plmtrain: ")

	var (
		modelKind = flag.String("model", "plnn", "model family: plnn, lmt or maxout")
		pieces    = flag.Int("pieces", 3, "MaxOut pieces per hidden unit")
		dsName    = flag.String("dataset", "mnist", "synthetic dataset: mnist or fmnist")
		imagesIDX = flag.String("images", "", "optional IDX image file (overrides -dataset)")
		labelsIDX = flag.String("labels", "", "optional IDX label file (with -images)")
		size      = flag.Int("size", 16, "synthetic image side length")
		perClass  = flag.Int("per-class", 120, "synthetic instances per class")
		testFrac  = flag.Float64("test-frac", 0.2, "held-out test fraction")
		hidden    = flag.String("hidden", "64,32", "PLNN hidden sizes, comma separated")
		epochs    = flag.Int("epochs", 15, "PLNN training epochs / LMT leaf epochs")
		perSample = flag.Bool("per-sample", false, "train on the per-sample reference loop instead of the batched GEMM epoch (same weights, for A/B timing)")
		seed      = flag.Int64("seed", 1, "RNG seed")
		out       = flag.String("out", "", "output model path (required)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	rng := rand.New(rand.NewSource(*seed))
	data, err := loadData(*imagesIDX, *labelsIDX, *dsName, rng, *size, *perClass)
	if err != nil {
		log.Fatal(err)
	}
	nTest := int(float64(data.Len()) * *testFrac)
	train, test := data.Split(rng, nTest)
	fmt.Printf("dataset %s: %d train / %d test, %d features, %d classes\n",
		data.Name, train.Len(), test.Len(), data.Dim(), data.Classes())

	trainCfg := nn.TrainConfig{
		Epochs:    *epochs,
		PerSample: *perSample,
		Progress: func(e int, l float64) {
			fmt.Printf("  epoch %d: loss %.4f\n", e, l)
		},
	}
	pathName := "batched GEMM epoch"
	if *perSample {
		pathName = "per-sample reference loop"
	}

	switch strings.ToLower(*modelKind) {
	case "plnn":
		sizes := []int{train.Dim()}
		for _, part := range strings.Split(*hidden, ",") {
			h, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || h <= 0 {
				log.Fatalf("bad -hidden entry %q", part)
			}
			sizes = append(sizes, h)
		}
		sizes = append(sizes, train.Classes())
		net := nn.New(rng, sizes...)
		start := time.Now()
		loss, err := net.Train(rng, train.X, train.Y, trainCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %v (%s)\n", time.Since(start).Round(time.Millisecond), pathName)
		fmt.Printf("final loss %.4f, train acc %.3f, test acc %.3f\n",
			loss, net.Accuracy(train.X, train.Y), net.Accuracy(test.X, test.Y))
		if err := net.Save(*out); err != nil {
			log.Fatal(err)
		}
	case "lmt":
		start := time.Now()
		tree, err := lmt.Train(rng, train.X, train.Y, train.Classes(), lmt.Config{
			LogReg: lmt.LogRegConfig{Epochs: *epochs * 10},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Printf("tree: %d leaves, depth %d, train acc %.3f, test acc %.3f\n",
			tree.NumLeaves(), tree.Depth(),
			tree.Accuracy(train.X, train.Y), tree.Accuracy(test.X, test.Y))
		if err := tree.Save(*out); err != nil {
			log.Fatal(err)
		}
	case "maxout":
		sizes := []int{train.Dim()}
		for _, part := range strings.Split(*hidden, ",") {
			h, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || h <= 0 {
				log.Fatalf("bad -hidden entry %q", part)
			}
			sizes = append(sizes, h)
		}
		sizes = append(sizes, train.Classes())
		net := nn.NewMaxout(rng, *pieces, sizes...)
		start := time.Now()
		loss, err := net.Train(rng, train.X, train.Y, trainCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %v (%s)\n", time.Since(start).Round(time.Millisecond), pathName)
		fmt.Printf("final loss %.4f, train acc %.3f, test acc %.3f\n",
			loss, net.Accuracy(train.X, train.Y), net.Accuracy(test.X, test.Y))
		if err := net.Save(*out); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -model %q (want plnn, lmt or maxout)", *modelKind)
	}
	fmt.Printf("saved %s model to %s\n", *modelKind, *out)
}

func loadData(images, labels, name string, rng *rand.Rand, size, perClass int) (*dataset.Dataset, error) {
	if images != "" || labels != "" {
		if images == "" || labels == "" {
			return nil, fmt.Errorf("-images and -labels must be given together")
		}
		names := make([]string, 10)
		for i := range names {
			names[i] = fmt.Sprintf("class-%d", i)
		}
		return dataset.LoadIDX(images, labels, "idx", names)
	}
	return dataset.SyntheticByName(name, rng, dataset.SynthConfig{Size: size, PerClass: perClass})
}
