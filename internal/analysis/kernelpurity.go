package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Kernelpurity guards the documented shape of the GEMM kernels in
// internal/mat: the pure-Go fallback of every assembly-backed inner product
// must accumulate in ascending k with one rounding chain per output
// element, because that is the order every microkernel in the tier ladder
// (NEON, AVX2, AVX-512) commits to and the whole cross-tier bit-identity
// argument rests on all paths performing the same additions in the same
// sequence.
//
// Four shapes are flagged in the gemm*.go files:
//
//  1. Descending accumulation: a for loop stepping its variable downward
//     while compound-assigning into a float. Reversing the k loop reorders
//     the additions and changes the rounded result.
//  2. Partial-sum recombination: adding together two variables that were
//     each built up with += inside a loop. Splitting one output element's
//     sum into lanes and combining at the end is the classic vectorization
//     move — and exactly the reassociation that breaks bit-identity.
//     (Distinct accumulators for distinct output elements, as in the 4x4
//     microkernel's s00..s31, are fine: they are never added to each
//     other.)
//  3. math.FMA anywhere in kernel code: a fused multiply-add rounds once
//     where the kernel contract requires two roundings per step (multiply,
//     then add) — the same reason the assembly tiers avoid VFMADD/VFMLA.
//  4. Float reductions inside epilogue hooks (functions named after or
//     methods on Epilogue): the fused epilogue is per-element
//     post-accumulation work only; a running scalar sum there re-enters the
//     reduction the GEMM has already committed.
var Kernelpurity = &Analyzer{
	Name: "kernelpurity",
	Doc: "GEMM fallback kernels must keep the ascending-k single-accumulator " +
		"shape that makes them bit-identical to the assembly path",
	Run: runKernelpurity,
}

func runKernelpurity(pass *Pass) error {
	if pass.Pkg.Path() != "repro/internal/mat" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		name := filepath.Base(pass.Fset.File(f.Pos()).Name())
		if !strings.HasPrefix(name, "gemm") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkKernelFunc(pass, fd)
		}
	}
	return nil
}

func checkKernelFunc(pass *Pass, fd *ast.FuncDecl) {
	epilogue := epilogueHook(pass, fd)
	// Accumulators: identifiers that receive a float += inside any loop.
	// Nested loops revisit inner assignments, so epilogue reports dedupe by
	// position.
	accumulators := make(map[types.Object]bool)
	reported := make(map[token.Pos]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMathFMA(pass, call) {
			pass.Reportf(call.Pos(), "math.FMA rounds once; kernel code must keep the separate multiply and add roundings every tier performs per step")
		}
		loopBody := loopBodyOf(n)
		if loopBody == nil {
			return true
		}
		if descendingLoop(n) && accumulatesFloat(pass, loopBody) {
			pass.Reportf(n.Pos(), "descending-index accumulation reorders the additions; kernels must accumulate in ascending k to stay bit-identical to the assembly path")
		}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || as.Tok != token.ADD_ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				ident, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if tv, ok := pass.TypesInfo.Types[lhs]; ok && isFloat(tv.Type) {
					if obj := pass.TypesInfo.Uses[ident]; obj != nil {
						if epilogue && !reported[as.Pos()] {
							reported[as.Pos()] = true
							pass.Reportf(as.Pos(), "epilogue hooks are per-element post-accumulation only; a running float reduction here re-enters the summation the GEMM already committed")
						}
						accumulators[obj] = true
					}
				}
			}
			return true
		})
		return true
	})
	if len(accumulators) < 2 {
		return
	}
	// Recombination: an x + y whose operands are two distinct loop
	// accumulators.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.ADD {
			return true
		}
		x := accumulatorOf(pass, accumulators, be.X)
		y := accumulatorOf(pass, accumulators, be.Y)
		if x != nil && y != nil && x != y {
			pass.Reportf(be.Pos(), "adding partial sums %s and %s reassociates the reduction; each output element must be one ascending accumulation chain", x.Name(), y.Name())
		}
		return true
	})
}

// isMathFMA reports whether the call is math.FMA.
func isMathFMA(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math" && obj.Name() == "FMA"
}

// epilogueHook reports whether fd is fused-epilogue code: a function whose
// name references Epilogue (applyEpilogueRows, MulBTIntoEpilogue — which
// only delegates its reduction to gemmBT) or a method on the Epilogue type.
// gemmBT itself merely takes an *Epilogue parameter and is not a hook — its
// accumulator chains are the reduction.
func epilogueHook(pass *Pass, fd *ast.FuncDecl) bool {
	if strings.Contains(fd.Name.Name, "Epilogue") {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Epilogue"
}

// loopBodyOf returns the body of a for or range statement, or nil.
func loopBodyOf(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// descendingLoop reports whether the for statement steps its variable
// downward (i-- or i -= step).
func descendingLoop(n ast.Node) bool {
	fs, ok := n.(*ast.ForStmt)
	if !ok {
		return false
	}
	switch post := fs.Post.(type) {
	case *ast.IncDecStmt:
		return post.Tok == token.DEC
	case *ast.AssignStmt:
		return post.Tok == token.SUB_ASSIGN
	}
	return false
}

// accumulatesFloat reports whether the block compound-assigns into a float.
func accumulatesFloat(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			if tv, ok := pass.TypesInfo.Types[lhs]; ok && isFloat(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// accumulatorOf resolves an operand to a known accumulator object, or nil.
func accumulatorOf(pass *Pass, accs map[types.Object]bool, e ast.Expr) types.Object {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[ident]
	if obj != nil && accs[obj] {
		return obj
	}
	return nil
}
