// Package openbox computes the exact locally linear classifier of a PLNN at
// a given instance from the network's parameters (Chu et al., KDD 2018),
// which the paper uses as ground truth for its PLNN experiments.
//
// For a ReLU network, fixing the activation pattern of an input x turns
// every hidden nonlinearity into a diagonal 0/1 matrix, so the logits become
// an exact affine function  z = W_eff x + b_eff  valid on the whole locally
// linear region containing x. This package folds the layers into (W_eff,
// b_eff), exposes the result as a plm.Linear, and fingerprints the region
// for the Region Difference metric.
package openbox

import (
	"fmt"
	"hash/fnv"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

// Extract folds the network's layers at x into the affine map of the
// locally linear region containing x.
func Extract(n *nn.Network, x mat.Vec) (*plm.Linear, error) {
	if len(x) != n.InputDim() {
		return nil, fmt.Errorf("openbox: input length %d != %d", len(x), n.InputDim())
	}
	d := n.InputDim()
	// Effective map starts as the identity: cur = I x + 0.
	curW := mat.Identity(d)
	curB := mat.NewVec(d)
	var pattern []bool

	// For a Leaky/Parametric ReLU network the inactive side multiplies by
	// the negative slope instead of zeroing — still piecewise linear, same
	// region structure.
	leak := n.Leak()
	cur := x.Clone()
	for li := 0; li < n.NumLayers(); li++ {
		l := n.Layer(li)
		// Affine composition: z = W_l (curW x + curB) + B_l.
		nextW := l.W.Mul(curW)
		nextB := l.W.MulVec(curB).AddInPlace(l.B)
		z := l.W.MulVec(cur).AddInPlace(l.B)
		if li < n.NumLayers()-1 {
			mask := nn.ReLUMask(z)
			pattern = append(pattern, mask...)
			for r, active := range mask {
				if active {
					continue
				}
				nextW.RawRow(r).ScaleInPlace(leak)
				nextB[r] *= leak
				z[r] *= leak
			}
		}
		curW, curB, cur = nextW, nextB, z
	}
	return plm.NewLinear(curW, curB, PatternKey(pattern))
}

// PatternKey returns a stable string fingerprint of an activation pattern.
func PatternKey(pattern []bool) string {
	h := fnv.New64a()
	buf := make([]byte, (len(pattern)+7)/8)
	for i, b := range pattern {
		if b {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	h.Write(buf)
	return fmt.Sprintf("plnn-%d-%016x", len(pattern), h.Sum64())
}

// SameRegion reports whether two instances share a locally linear region of
// the network (identical activation patterns).
func SameRegion(n *nn.Network, a, b mat.Vec) bool {
	pa := n.ActivationPattern(a)
	pb := n.ActivationPattern(b)
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// PLNN adapts an nn.Network to the plm.RegionModel interface, giving the
// evaluation harness a uniform white-box view of the network.
type PLNN struct {
	Net *nn.Network
}

var _ plm.RegionModel = (*PLNN)(nil)

// Predict returns softmax class probabilities.
func (p *PLNN) Predict(x mat.Vec) mat.Vec { return p.Net.Predict(x) }

// Dim returns the network's input dimensionality.
func (p *PLNN) Dim() int { return p.Net.InputDim() }

// Classes returns the number of output classes.
func (p *PLNN) Classes() int { return p.Net.Classes() }

// RegionKey fingerprints the activation pattern at x.
func (p *PLNN) RegionKey(x mat.Vec) string {
	return PatternKey(p.Net.ActivationPattern(x))
}

// LocalAt extracts the locally linear classifier at x.
func (p *PLNN) LocalAt(x mat.Vec) (*plm.Linear, error) { return Extract(p.Net, x) }
