package eval

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/mat"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// RemoteBench turns one in-process model into a genuinely remote experiment
// target: the model is served over loopback HTTP — optionally sharded across
// replica slots — and dialed back through api.DialAggregated, so every
// interpreter probe pays a real wire round trip and rides the adaptive
// batching layer. Experiments that want to measure round trips rather than
// abstract queries run against a RemoteBench instead of a raw client.
type RemoteBench struct {
	// Server exposes the server-side counters (Queries, Requests).
	Server *api.Server
	// Agg is the aggregated model experiments probe through.
	Agg *api.Aggregator
	// Client is the underlying HTTP client, for sticky-error checks.
	Client *api.Client

	httpSrv *http.Server
	url     string
}

// ServeRemote serves model on a loopback listener and dials it back through
// an aggregator. replicas > 1 routes /batch requests across that many shard
// slots (all backed by the one model value — models are pure functions, so
// the slots buy intra-batch parallelism, exactly like plmserve -replicas).
// Close the returned bench when the experiment finishes.
func ServeRemote(model plm.Model, name string, replicas int, cfg api.AggregatorConfig) (*RemoteBench, error) {
	served := model
	if replicas > 1 {
		slots := make([]plm.Model, replicas)
		for i := range slots {
			slots[i] = model
		}
		shard, err := api.NewShard(slots)
		if err != nil {
			return nil, fmt.Errorf("eval: shard remote: %w", err)
		}
		served = shard
	}
	srv := api.NewServer(served, name)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("eval: serve remote: %w", err)
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(lis) }()
	url := "http://" + lis.Addr().String()
	agg, client, err := api.DialAggregated(url, nil, 2, cfg)
	if err != nil {
		_ = httpSrv.Close()
		return nil, err
	}
	return &RemoteBench{Server: srv, Agg: agg, Client: client, httpSrv: httpSrv, url: url}, nil
}

// URL returns the bench's base URL, for extra clients.
func (r *RemoteBench) URL() string { return r.url }

// Model returns the aggregated remote as a plm.Model.
func (r *RemoteBench) Model() plm.Model { return r.Agg }

// Close flushes the aggregator and stops the HTTP server.
func (r *RemoteBench) Close() error {
	r.Agg.Close()
	return r.httpSrv.Close()
}

// WireStats summarizes what an over-the-API experiment cost on the wire.
type WireStats struct {
	Queries    int64         // probes served (server-counted)
	RoundTrips int64         // HTTP round trips served
	Window     time.Duration // aggregator window in force at the end
	RTT        time.Duration // smoothed round-trip estimate (adaptive only)
}

// QueriesPerTrip returns the batching ratio the run achieved.
func (s WireStats) QueriesPerTrip() float64 {
	if s.RoundTrips == 0 {
		return 0
	}
	return float64(s.Queries) / float64(s.RoundTrips)
}

// remoteRegion probes through the aggregated remote while answering the
// white-box region questions the quality metrics need from the local model —
// the evaluation harness's legitimate dual role. Embedding the concrete
// aggregator (not plm.Model) keeps PredictBatch visible, so each sample
// set still ships as one batched round trip.
type remoteRegion struct {
	*api.Aggregator
	white plm.RegionModel
}

func (r remoteRegion) RegionKey(x mat.Vec) string             { return r.white.RegionKey(x) }
func (r remoteRegion) LocalAt(x mat.Vec) (*plm.Linear, error) { return r.white.LocalAt(x) }

// Quality runs SampleQuality against the already-serving bench: every
// interpreter probe crosses the real HTTP hop through the adaptive
// aggregator, while the white-box side answers its ground-truth LocalAt
// queries locally. The returned WireStats cover this run alone — the
// server counters are cumulative over the bench's lifetime, so Quality
// snapshots them before and after. A persistent bench amortizes server
// startup, the dialed connection and the warmed adaptive window across
// experiment repetitions (cmd/experiments -exp remote starts one bench per
// model and reuses it for every repetition).
func (r *RemoteBench) Quality(white plm.RegionModel, methods []plm.Interpreter, xs []mat.Vec) ([]QualityRow, WireStats, error) {
	q0, t0 := r.Server.Queries(), r.Server.Requests()
	rows, err := SampleQuality(remoteRegion{Aggregator: r.Agg, white: white}, methods, xs)
	if err != nil {
		return nil, WireStats{}, err
	}
	if err := r.Client.Err(); err != nil {
		return nil, WireStats{}, fmt.Errorf("eval: transport errors during remote quality run: %w", err)
	}
	stats := WireStats{
		Queries:    r.Server.Queries() - q0,
		RoundTrips: r.Server.Requests() - t0,
		Window:     r.Agg.CurrentWindow(),
		RTT:        r.Agg.RTT(),
	}
	return rows, stats, nil
}

// QualityOverAPI is the one-shot form of RemoteBench.Quality: the model is
// served (with the requested replica count), interpreted over the wire,
// and the server is torn down when the run finishes. The white-box side
// answers through a region cache — metrics ask per probe and per sample,
// but the closed form only changes per region.
func QualityOverAPI(model plm.RegionModel, name string, methods []plm.Interpreter, xs []mat.Vec, replicas int, cfg api.AggregatorConfig) ([]QualityRow, WireStats, error) {
	bench, err := ServeRemote(model, name, replicas, cfg)
	if err != nil {
		return nil, WireStats{}, err
	}
	defer bench.Close()
	return bench.Quality(openbox.CacheRegionModel(model, 0), methods, xs)
}
