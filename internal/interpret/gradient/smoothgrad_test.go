package gradient

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestSmoothGradApproachesGradientAtTinyNoise(t *testing.T) {
	// With noise far below the distance to any region boundary, every
	// perturbed gradient equals the local gradient, so SmoothGrad must
	// return it exactly.
	net := testNet(20)
	rng := rand.New(rand.NewSource(21))
	x := randVec(rng, 4)
	grad := net.InputGradient(x, 0)
	g := New(net, Config{Method: SmoothGrad, Steps: 16, NoiseSD: 1e-9, Seed: 22})
	got, err := g.Interpret(nil, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Features.EqualApprox(grad, 1e-6) {
		t.Fatalf("SmoothGrad %v != gradient %v", got.Features, grad)
	}
}

func TestSmoothGradSmoothsAcrossRegions(t *testing.T) {
	// With large noise the average blends gradients from several regions;
	// the result should differ from the single-point gradient for a
	// network with nearby boundaries.
	net := testNet(23)
	rng := rand.New(rand.NewSource(24))
	var x mat.Vec
	// Find a point whose neighbourhood spans regions (gradient changes).
	for tries := 0; tries < 100; tries++ {
		x = randVec(rng, 4)
		base := net.InputGradient(x, 0)
		moved := x.Clone()
		for i := range moved {
			moved[i] += 0.5
		}
		if !net.InputGradient(moved, 0).EqualApprox(base, 1e-9) {
			break
		}
	}
	g := New(net, Config{Method: SmoothGrad, Steps: 64, NoiseSD: 1.0, Seed: 25})
	got, err := g.Interpret(nil, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features.EqualApprox(net.InputGradient(x, 0), 1e-12) {
		t.Fatal("large-noise SmoothGrad identical to point gradient; smoothing had no effect")
	}
	if got.Features.HasNaN() {
		t.Fatal("NaN in SmoothGrad output")
	}
}

func TestSmoothGradReproducible(t *testing.T) {
	net := testNet(26)
	rng := rand.New(rand.NewSource(27))
	x := randVec(rng, 4)
	a, err := New(net, Config{Method: SmoothGrad, Seed: 5}).Interpret(nil, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(net, Config{Method: SmoothGrad, Seed: 5}).Interpret(nil, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Features.EqualApprox(b.Features, 0) {
		t.Fatal("same seed produced different SmoothGrad maps")
	}
}

func TestSmoothGradName(t *testing.T) {
	if SmoothGrad.String() != "SmoothGrad" {
		t.Fatalf("name = %q", SmoothGrad.String())
	}
}
