package mat

import (
	"math/rand"
	"testing"
)

// naiveMul is the reference triple loop: one ascending-k dot product per
// output element, the order the blocked kernel must reproduce exactly.
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func bitEqual(t *testing.T, got, want *Dense, label string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: (%d,%d) = %v, want %v (bit-exact)", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestMulBitIdenticalToNaive sweeps shapes across every register-tile tail
// case (rows mod 4, cols mod 2, including zero-sized dimensions).
func TestMulBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, r := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9} {
		for _, k := range []int{0, 1, 3, 8, 17} {
			for _, c := range []int{0, 1, 2, 3, 5, 6} {
				a := randDense(rng, r, k)
				b := randDense(rng, k, c)
				bitEqual(t, a.Mul(b), naiveMul(a, b), "Mul")
			}
		}
	}
}

func TestMulIntoMatchesMulWithoutAllocatingDst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randDense(rng, 13, 9)
	b := randDense(rng, 9, 11)
	dst := NewDense(13, 11)
	dst.RawRow(0)[0] = 42 // stale garbage must be overwritten
	got := a.MulInto(b, dst)
	if got != dst {
		t.Fatal("MulInto did not return dst")
	}
	bitEqual(t, dst, a.Mul(b), "MulInto")
}

func TestMulBTMatchesMulOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range [][3]int{{6, 5, 4}, {1, 1, 1}, {9, 17, 3}, {4, 8, 2}} {
		a := randDense(rng, shape[0], shape[1])
		b := randDense(rng, shape[2], shape[1]) // b is n x k; MulBT computes a·bᵀ
		bitEqual(t, a.MulBT(b), a.Mul(b.T()), "MulBT")
	}
}

func TestMulVecIntoBitIdenticalToMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := randDense(rng, 7, 12)
	x := make(Vec, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make(Vec, 7)
	m.MulVecInto(x, dst)
	want := m.MulVec(x)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMulWorkerCountDoesNotChangeBits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Big enough to clear the parallel cutoff.
	a := randDense(rng, 129, 130)
	b := randDense(rng, 130, 37)

	prev := SetWorkers(1)
	serial := a.Mul(b)
	SetWorkers(4)
	parallel := a.Mul(b)
	parallelBT := a.MulBT(b.T())
	SetWorkers(prev)

	bitEqual(t, parallel, serial, "workers=4 vs workers=1")
	bitEqual(t, parallelBT, serial, "MulBT workers=4 vs workers=1")
}

func TestMulIntoRejectsAliasedDst(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 4, 4)
	b := randDense(rng, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on aliased dst")
		}
	}()
	a.MulInto(b, a)
}

func TestMulIntoShapePanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 4)
	for _, dst := range []*Dense{NewDense(2, 3), NewDense(3, 4), NewDense(0, 0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for dst %dx%d", dst.Rows(), dst.Cols())
				}
			}()
			a.MulInto(b, dst)
		}()
	}
}
