package core

import (
	"fmt"
	"sync"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Pool interprets many instances concurrently. A single OpenAPI value is
// not safe for concurrent use (it owns one RNG stream), so the pool keeps
// one interpreter per worker, seeded deterministically from the base
// configuration. Jobs are assigned by static striping — worker i handles
// instances i, i+n, i+2n, ... — so each instance is always interpreted by
// the same worker with the same RNG stream position: results are
// bit-reproducible for a fixed worker count, independent of goroutine
// scheduling and of how the model batches queries.
type Pool struct {
	workers []*OpenAPI
}

// NewPool builds a pool of n workers derived from cfg; worker i uses seed
// cfg.Seed + i. It panics if n <= 0. A caller-supplied cfg.RNG is ignored —
// shared RNG state is exactly what the pool exists to avoid.
func NewPool(cfg Config, n int) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("core: pool size %d", n))
	}
	p := &Pool{workers: make([]*OpenAPI, n)}
	for i := range p.workers {
		wcfg := cfg
		wcfg.RNG = nil
		wcfg.Seed = cfg.Seed + int64(i)
		p.workers[i] = New(wcfg)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Result pairs one instance's interpretation with its slot and any error.
type Result struct {
	Index  int
	Interp *plm.Interpretation
	Err    error
}

// InterpretMany explains model's prediction on every instance for its
// predicted class, fanning the work across the pool. The returned slice is
// ordered like xs; failed instances carry their error.
//
// The argmax pre-query for all instances is issued as one batch up front —
// a single round trip against a batch-capable service — and each prediction
// doubles as the anchor probe of its interpretation, so no instance is
// predicted twice. While one worker solves its linear systems, the others'
// sample-set probes are in flight; wrap the model in an api.Aggregator to
// coalesce those concurrent probes into shared round trips.
//
// Remote models degrade transport failures to uniform responses and record
// them stickily rather than erroring per probe, so a Result can be clean
// while the wire was not: after a run against an api.Client or
// api.Aggregator, check its Err before trusting the interpretations.
func (p *Pool) InterpretMany(model plm.Model, xs []mat.Vec) []Result {
	results := make([]Result, len(xs))
	if len(xs) == 0 {
		return results
	}
	// Validate instance shapes before the batched pre-query: one malformed
	// instance must fail its own Result, not panic the whole batch inside
	// the model's forward pass (the serial path rejects it with the same
	// error via checkInstance).
	valid := make([]int, 0, len(xs))
	for i, x := range xs {
		if len(x) != model.Dim() {
			results[i] = Result{Index: i, Err: fmt.Errorf("core: instance length %d != model dim %d", len(x), model.Dim())}
			continue
		}
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return results
	}
	vxs := make([]mat.Vec, len(valid))
	for j, i := range valid {
		vxs[j] = xs[i]
	}
	// Snapshot any sticky error before probing: the check below must be
	// able to tell a fresh pre-query failure from an error a reused client
	// recorded in some earlier run.
	var stale error
	if se, ok := model.(interface{ Err() error }); ok {
		stale = se.Err()
	}
	ys := plm.PredictAll(model, vxs)
	y0s := make([]mat.Vec, len(xs))
	for j, i := range valid {
		y0s[i] = ys[j]
	}
	// Remote models degrade transport failures to uniform distributions, so
	// a dead API turns the argmax pre-query into garbage anchors: every job
	// would then "converge" on class 0 of a constant model. When the model
	// exposes a sticky error (api.Client, api.Aggregator), check it now and
	// fail every affected instance fast instead of burning MaxIterations of
	// probes per job against a wire that is already known broken. A sticky
	// error that predates this run is ambiguous — record() keeps only the
	// first error, so a fresh failure would be invisible behind it — and
	// silently wrong anchors are worse than a loud abort, so those fail too,
	// with a message pointing at ResetErr.
	if se, ok := model.(interface{ Err() error }); ok {
		if err := se.Err(); err != nil {
			wrap := func() error { return fmt.Errorf("core: argmax pre-query failed: %w", err) }
			if stale != nil {
				wrap = func() error {
					return fmt.Errorf("core: model carries a sticky error predating this run (ResetErr before bulk interpretation): %w", err)
				}
			}
			for i := range results {
				if results[i].Err != nil {
					continue // keep the precise shape-validation error
				}
				results[i] = Result{Index: i, Err: wrap()}
			}
			return results
		}
	}
	n := len(p.workers)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int, o *OpenAPI) {
			defer wg.Done()
			for i := w; i < len(xs); i += n {
				if y0s[i] == nil {
					continue // rejected before the pre-query
				}
				c := y0s[i].ArgMax()
				interp, err := o.InterpretWithPrediction(model, xs[i], y0s[i], c)
				results[i] = Result{Index: i, Interp: interp, Err: err}
			}
		}(w, p.workers[w])
	}
	wg.Wait()
	return results
}
