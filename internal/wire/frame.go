package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "PLMB"
//	4       1     version, currently 1
//	5       1     flags — bit 0: payload elements are float32
//	6       2     reserved, must be zero
//	8       4     rows (uint32)
//	12      4     cols (uint32)
//	16      …     rows·cols payload elements, row-major, little-endian
//	              IEEE-754: 8 bytes each (float64) or 4 (float32)
//
// The dims are the length prefix: a reader knows the exact payload size
// before touching it, which is what lets GET /jobs/{id} stream one frame
// per result chunk with no outer envelope — the stream ends at EOF.
// Float64 payloads carry the exact in-process bits, so the binary path is
// bit-identical to JSON (whose shortest round-trip formatting restores the
// same bits). Float32 frames are the lossy opt-in; flags bit 0 makes every
// frame self-describing, so a decoder never guesses the element width.
const (
	frameMagic   = "PLMB"
	FrameVersion = 1
	frameHeader  = 16
	flagFloat32  = 1 << 0
)

// Binary is the float-frame codec. Float32 selects the 4-byte payload
// encoding for frames this value writes; decoding always honors the
// incoming frame's own flags.
type Binary struct {
	Float32 bool
}

// Name returns "binary".
func (Binary) Name() string { return NameBinary }

// ContentType returns the frame MIME type.
func (Binary) ContentType() string { return ContentTypeBinary }

// EncodeVec writes v as a 1×len(v) frame. The field name is JSON-only.
func (b Binary) EncodeVec(w io.Writer, _ string, v []float64) error {
	return WriteFrame(w, [][]float64{v}, b.Float32)
}

// DecodeVec reads one frame and requires it to be a single row.
func (Binary) DecodeVec(r io.Reader, limit int64, _ string) ([]float64, error) {
	m, err := ReadFrame(r, limit)
	if err != nil {
		return nil, err
	}
	if len(m) != 1 {
		return nil, fmt.Errorf("wire: frame carries %d rows, want a single vector", len(m))
	}
	return m[0], nil
}

// EncodeMat writes m as one rows×cols frame.
func (b Binary) EncodeMat(w io.Writer, _ string, m [][]float64) error {
	return WriteFrame(w, m, b.Float32)
}

// DecodeMat reads one frame as a row list.
func (Binary) DecodeMat(r io.Reader, limit int64, _ string) ([][]float64, error) {
	m, err := ReadFrame(r, limit)
	if err != nil {
		return nil, err
	}
	if m == nil {
		m = [][]float64{}
	}
	return m, nil
}

// WriteFrame writes m as one binary frame. All rows must share a width.
func WriteFrame(w io.Writer, m [][]float64, f32 bool) error {
	rows := len(m)
	cols := 0
	if rows > 0 {
		cols = len(m[0])
	}
	for i, row := range m {
		if len(row) != cols {
			return fmt.Errorf("wire: ragged frame: row %d has %d cols, want %d", i, len(row), cols)
		}
	}
	if int64(rows) > math.MaxUint32 || int64(cols) > math.MaxUint32 {
		return fmt.Errorf("wire: frame dims %dx%d exceed uint32", rows, cols)
	}
	var hdr [frameHeader]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = FrameVersion
	if f32 {
		hdr[5] = flagFloat32
	}
	binary.LittleEndian.PutUint32(hdr[8:], uint32(rows))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(cols))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	elem := 8
	if f32 {
		elem = 4
	}
	buf := make([]byte, cols*elem)
	for _, row := range m {
		if f32 {
			for j, v := range row {
				binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(float32(v)))
			}
		} else {
			for j, v := range row {
				binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one binary frame, spending at most limit bytes
// (non-positive: DefaultMaxBody). A frame whose declared payload exceeds
// the remaining budget fails with ErrTooLarge before any payload
// allocation, so a hostile 16-byte header cannot commit the process to
// gigabytes. io.EOF is returned unwrapped when the reader is exhausted
// before the first header byte — the end-of-stream marker frame readers
// rely on; a header or payload cut off anywhere later is malformed.
func ReadFrame(r io.Reader, limit int64) ([][]float64, error) {
	lr := newLimited(r, limit)
	return readFrame(lr)
}

// FrameReader reads a sequence of frames off one stream, sharing a single
// byte budget across all of them — the GET /jobs/{id} result stream.
type FrameReader struct {
	lr *limited
}

// NewFrameReader builds a reader with the given total byte budget
// (non-positive: DefaultMaxBody).
func NewFrameReader(r io.Reader, limit int64) *FrameReader {
	return &FrameReader{lr: newLimited(r, limit)}
}

// Next returns the next frame, or io.EOF at a clean end of stream.
func (f *FrameReader) Next() ([][]float64, error) {
	return readFrame(f.lr)
}

func readFrame(lr *limited) ([][]float64, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(lr, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame header: %w", lr.sticky(err))
	}
	if _, err := io.ReadFull(lr, hdr[1:]); err != nil {
		return nil, fmt.Errorf("wire: read frame header: %w", lr.sticky(noEOF(err)))
	}
	if string(hdr[:4]) != frameMagic {
		return nil, fmt.Errorf("wire: bad frame magic % x", hdr[:4])
	}
	if hdr[4] != FrameVersion {
		return nil, fmt.Errorf("wire: unsupported frame version %d", hdr[4])
	}
	if hdr[5]&^byte(flagFloat32) != 0 {
		return nil, fmt.Errorf("wire: unknown frame flags %#x", hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return nil, fmt.Errorf("wire: nonzero reserved frame bytes")
	}
	f32 := hdr[5]&flagFloat32 != 0
	rows := int64(binary.LittleEndian.Uint32(hdr[8:]))
	cols := int64(binary.LittleEndian.Uint32(hdr[12:]))
	elem := int64(8)
	if f32 {
		elem = 4
	}
	// Admission control before any allocation: the declared payload — with
	// every row costing at least one byte, so a zero-col frame cannot claim
	// four billion rows for free — must fit the remaining budget.
	perRow := cols * elem
	if perRow == 0 {
		perRow = 1
	}
	if rows == 0 {
		// No payload follows; return before sizing the row buffer — a
		// zero-row frame may still declare a huge cols.
		return [][]float64{}, nil
	}
	if perRow > math.MaxInt64/rows || rows*perRow > lr.n {
		return nil, fmt.Errorf("wire: frame declares %dx%d payload: %w", rows, cols, ErrTooLarge)
	}
	out := make([][]float64, rows)
	buf := make([]byte, cols*elem)
	for i := range out {
		if _, err := io.ReadFull(lr, buf); err != nil {
			return nil, fmt.Errorf("wire: read frame payload row %d: %w", i, lr.sticky(noEOF(err)))
		}
		row := make([]float64, cols)
		if f32 {
			for j := range row {
				row[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:])))
			}
		} else {
			for j := range row {
				row[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
			}
		}
		out[i] = row
	}
	return out, nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: past the first
// header byte, running out of input is a truncated frame, not a clean end
// of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
