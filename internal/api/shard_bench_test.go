package api

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// benchShardModel is big enough that a 256-probe batch does real GEMM work
// per chunk, small enough to keep the benchmark honest about routing
// overhead rather than raw FLOPs.
func benchShardModel(seed int64) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), 32, 64, 32, 5)}
}

func benchShardProbes(seed int64, n, dim int) []mat.Vec {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]mat.Vec, n)
	for i := range xs {
		xs[i] = make(mat.Vec, dim)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	return xs
}

func runShardBench(b *testing.B, s *Shard, xs []mat.Vec) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PredictBatch(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShard_Local4 is the homogeneous baseline: 4 in-process replicas
// behind the load-aware router.
func BenchmarkShard_Local4(b *testing.B) {
	replicas := make([]plm.Model, 4)
	for i := range replicas {
		replicas[i] = benchShardModel(400)
	}
	s, err := NewShard(replicas)
	if err != nil {
		b.Fatal(err)
	}
	runShardBench(b, s, benchShardProbes(401, 256, 32))
}

// BenchmarkShard_Remote2Local2 is the heterogeneous topology `plmserve
// -replicas 2 -backend a,b` wires: half the backends answer over a real
// loopback HTTP hop, so the trajectory records what the wire costs next to
// BenchmarkShard_Local4.
func BenchmarkShard_Remote2Local2(b *testing.B) {
	backends := []Backend{
		NewLocalBackend(benchShardModel(400), "local-0"),
		NewLocalBackend(benchShardModel(400), "local-1"),
	}
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(NewServer(benchShardModel(400), "remote"))
		defer ts.Close()
		client, err := Dial(ts.URL, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		backends = append(backends, NewRemoteBackend(client))
	}
	s, err := NewShardBackends(backends, ShardConfig{})
	if err != nil {
		b.Fatal(err)
	}
	runShardBench(b, s, benchShardProbes(401, 256, 32))
}
