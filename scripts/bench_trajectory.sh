#!/usr/bin/env bash
# bench_trajectory.sh — run the committed benchmark-trajectory sets (PR 3:
# compute fast path, PR 4: heterogeneous shards, PR 5: batched training
# epoch, PR 7: wire codecs, PR 8: hedged-dispatch tail latency, PR 9: fused
# GEMM epilogues + kernel tiers, PR 10: persistent region atlas), merge the
# results into one JSON file, and gate
# them against the committed snapshots with `benchjson -compare`.
#
# Usage (from anywhere inside the repo; CI runs it verbatim):
#
#   scripts/bench_trajectory.sh [out.json]
#
# Environment:
#   BENCH_TOL   allowed fractional ns/op regression vs snapshot (default 0.35)
#
# Exits non-zero when any committed trajectory benchmark regressed past the
# tolerance or vanished from the run. Benchmarks added since the snapshots
# ride along without being gated.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

out="${1:-BENCH_ci.json}"
tol="${BENCH_TOL:-0.35}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Each bench run writes to its own file so a failure in any of them fails
# the script (a piped brace group would only surface the last command's
# exit status).
echo "== PR 3 set: batched forward, region-cached extraction, GEMM kernels"
go test -run='^$' -bench='Logits(Loop|Batch)256|Predict(Loop|Batch)256|MaxoutLogits' -benchtime=20x ./internal/nn/ >"$tmp/nn.txt"
go test -run='^$' -bench='Extract' -benchtime=20x ./internal/openbox/ >"$tmp/openbox.txt"
go test -run='^$' -bench='Mul(BT|Naive)?_256' -benchtime=10x ./internal/mat/ >"$tmp/mat.txt"

echo "== PR 4 set: heterogeneous shard topologies"
go test -run='^$' -bench='BenchmarkShard_(Local4|Remote2Local2)' -benchtime=20x ./internal/api/ >"$tmp/shard.txt"

echo "== PR 5 set: batched training epoch"
go test -run='^$' -bench='BenchmarkTrainEpoch' -benchtime=10x ./internal/nn/ >"$tmp/train.txt"

# The small-batch codec round trips run in microseconds, so they get a
# deeper iteration count than the heavyweight sets to keep the gate quiet.
echo "== PR 7 set: wire codec round trips (/batch payloads, JSON vs binary)"
go test -run='^$' -bench='BenchmarkWireBatch' -benchtime=200x ./internal/wire/ >"$tmp/wire.txt"

echo "== PR 8 set: hedged dispatch tail latency (spiky remote, p99 metric)"
go test -run='^$' -bench='BenchmarkShard_Tail_(Unhedged|Hedged)' -benchtime=20x ./internal/api/ >"$tmp/hedge.txt"

echo "== PR 9 set: fused GEMM epilogues, best tier vs unfused PR-3 forward"
go test -run='^$' -bench='BenchmarkMulEpilogue' -benchtime=10x ./internal/mat/ >"$tmp/epilogue.txt"
go test -run='^$' -bench='BenchmarkForward(Fused|UnfusedPR3_)256' -benchtime=20x ./internal/nn/ >"$tmp/fused.txt"

# The warm-lookup path runs in microseconds, so like the wire set it gets a
# deeper iteration count: at 20x the first-iteration page-cache effects
# dominate and the gate would flap.
echo "== PR 10 set: region atlas (cold compose vs warm disk lookup, reopen)"
go test -run='^$' -bench='BenchmarkAtlas_(ColdCompose|WarmLookup)' -benchtime=500x ./internal/atlas/ >"$tmp/atlas.txt"
go test -run='^$' -bench='BenchmarkAtlas_Reopen' -benchtime=50x ./internal/atlas/ >>"$tmp/atlas.txt"

cat "$tmp"/nn.txt "$tmp"/openbox.txt "$tmp"/mat.txt "$tmp"/shard.txt "$tmp"/train.txt "$tmp"/wire.txt "$tmp"/hedge.txt "$tmp"/epilogue.txt "$tmp"/fused.txt "$tmp"/atlas.txt |
	go run ./cmd/benchjson -out "$out" \
		-compare BENCH_pr3.json,BENCH_pr4.json,BENCH_pr5.json,BENCH_pr7.json,BENCH_pr8.json,BENCH_pr9.json,BENCH_pr10.json -tol "$tol"
