// Package heatmap renders feature vectors as images, reproducing the
// paper's Figure 2 visualization convention: gray-scale for averaged class
// images, and a red/blue diverging colormap for decision features, where red
// marks features that support the class and blue marks features that
// suppress it.
package heatmap

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"
	"strings"

	"repro/internal/mat"
)

// Grayscale renders values (expected in [0,1], clamped otherwise) as a
// w-by-h gray image, row-major.
func Grayscale(values mat.Vec, w, h int) (*image.Gray, error) {
	if len(values) != w*h {
		return nil, fmt.Errorf("heatmap: %d values for %dx%d image", len(values), w, h)
	}
	img := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := values[y*w+x]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			img.SetGray(x, y, color.Gray{Y: uint8(v*255 + 0.5)})
		}
	}
	return img, nil
}

// Diverging renders signed values with the red/blue convention: the most
// positive value maps to pure red, the most negative to pure blue, zero to
// white. Normalization is symmetric around zero by the max |value|.
func Diverging(values mat.Vec, w, h int) (*image.RGBA, error) {
	if len(values) != w*h {
		return nil, fmt.Errorf("heatmap: %d values for %dx%d image", len(values), w, h)
	}
	maxAbs := values.NormInf()
	if maxAbs == 0 {
		maxAbs = 1 // all-white image
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := values[y*w+x] / maxAbs // in [-1, 1]
			var r, g, b uint8
			if t >= 0 {
				// White -> red.
				r = 255
				g = uint8((1 - t) * 255)
				b = uint8((1 - t) * 255)
			} else {
				// White -> blue.
				r = uint8((1 + t) * 255)
				g = uint8((1 + t) * 255)
				b = 255
			}
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img, nil
}

// SavePNG writes any image to path as PNG.
func SavePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heatmap: create %s: %w", path, err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("heatmap: encode %s: %w", path, err)
	}
	return nil
}

// Montage composes a grid of equally sized images into one image with pad
// pixels of white gutter — how the paper lays out Figure 2 (rows: mean
// image, PLNN features, LMT features; columns: classes). rows[r][c] may be
// nil to leave a cell blank. All non-nil cells must share the first cell's
// bounds.
func Montage(rows [][]image.Image, pad int) (*image.RGBA, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("heatmap: empty montage")
	}
	if pad < 0 {
		pad = 0
	}
	var cellW, cellH, cols int
	for _, row := range rows {
		if len(row) > cols {
			cols = len(row)
		}
		for _, img := range row {
			if img != nil && cellW == 0 {
				b := img.Bounds()
				cellW, cellH = b.Dx(), b.Dy()
			}
		}
	}
	if cellW == 0 {
		return nil, fmt.Errorf("heatmap: montage has no images")
	}
	outW := cols*cellW + (cols+1)*pad
	outH := len(rows)*cellH + (len(rows)+1)*pad
	out := image.NewRGBA(image.Rect(0, 0, outW, outH))
	// White background.
	for i := range out.Pix {
		out.Pix[i] = 255
	}
	for r, row := range rows {
		for c, img := range row {
			if img == nil {
				continue
			}
			b := img.Bounds()
			if b.Dx() != cellW || b.Dy() != cellH {
				return nil, fmt.Errorf("heatmap: cell (%d,%d) is %dx%d, want %dx%d",
					r, c, b.Dx(), b.Dy(), cellW, cellH)
			}
			x0 := pad + c*(cellW+pad)
			y0 := pad + r*(cellH+pad)
			for y := 0; y < cellH; y++ {
				for x := 0; x < cellW; x++ {
					out.Set(x0+x, y0+y, img.At(b.Min.X+x, b.Min.Y+y))
				}
			}
		}
	}
	return out, nil
}

const asciiRamp = " .:-=+*#%@"

// ASCII renders values as terminal art. When signed is false the ramp maps
// [0, max]; when signed is true positive values render with the ramp and
// negative values with lowercase letters, so polarity is visible in a log.
func ASCII(values mat.Vec, w, h int, signed bool) (string, error) {
	if len(values) != w*h {
		return "", fmt.Errorf("heatmap: %d values for %dx%d image", len(values), w, h)
	}
	maxAbs := values.NormInf()
	if maxAbs == 0 {
		maxAbs = 1
	}
	var sb strings.Builder
	sb.Grow((w + 1) * h)
	negRamp := " abcdefghi"
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := values[y*w+x] / maxAbs
			if !signed {
				if v < 0 {
					v = 0
				}
				idx := int(v * float64(len(asciiRamp)-1))
				sb.WriteByte(asciiRamp[idx])
				continue
			}
			a := math.Abs(v)
			idx := int(a * float64(len(asciiRamp)-1))
			if v >= 0 {
				sb.WriteByte(asciiRamp[idx])
			} else {
				sb.WriteByte(negRamp[idx])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// SideBySide joins several equal-height ASCII blocks horizontally with a
// separator — handy for printing Figure 2 rows in a terminal.
func SideBySide(blocks []string, sep string) string {
	if len(blocks) == 0 {
		return ""
	}
	split := make([][]string, len(blocks))
	height := 0
	for i, b := range blocks {
		split[i] = strings.Split(strings.TrimRight(b, "\n"), "\n")
		if len(split[i]) > height {
			height = len(split[i])
		}
	}
	var sb strings.Builder
	for row := 0; row < height; row++ {
		for i, lines := range split {
			if i > 0 {
				sb.WriteString(sep)
			}
			if row < len(lines) {
				sb.WriteString(lines[row])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
