package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/mat"
)

// The IDX binary format is what the real MNIST/FMNIST distributions use:
// a magic number (0x00000803 for uint8 image tensors, 0x00000801 for label
// vectors), big-endian dimension sizes, then raw uint8 data. Implementing
// the codec means genuine downloads drop into this reproduction unchanged.

const (
	idxMagicImages = 0x00000803
	idxMagicLabels = 0x00000801
)

// WriteIDXImages encodes the dataset's images (denormalized to 0-255 uint8)
// in IDX format to w.
func WriteIDXImages(w io.Writer, d *Dataset) error {
	hdr := []uint32{idxMagicImages, uint32(d.Len()), uint32(d.Height), uint32(d.Width)}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return fmt.Errorf("dataset: write idx header: %w", err)
		}
	}
	buf := make([]byte, d.Dim())
	for _, x := range d.X {
		for i, v := range x {
			p := int(v*255 + 0.5)
			if p < 0 {
				p = 0
			} else if p > 255 {
				p = 255
			}
			buf[i] = byte(p)
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("dataset: write idx pixels: %w", err)
		}
	}
	return nil
}

// WriteIDXLabels encodes the dataset's labels in IDX format to w.
func WriteIDXLabels(w io.Writer, d *Dataset) error {
	hdr := []uint32{idxMagicLabels, uint32(d.Len())}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return fmt.Errorf("dataset: write idx label header: %w", err)
		}
	}
	buf := make([]byte, d.Len())
	for i, y := range d.Y {
		if y < 0 || y > 255 {
			return fmt.Errorf("dataset: label %d not encodable as uint8", y)
		}
		buf[i] = byte(y)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("dataset: write idx labels: %w", err)
	}
	return nil
}

// ReadIDXImages decodes an IDX image tensor from r into normalized [0,1]
// vectors.
func ReadIDXImages(r io.Reader) (imgs []mat.Vec, width, height int, err error) {
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, 0, 0, fmt.Errorf("dataset: read idx header: %w", err)
		}
	}
	if hdr[0] != idxMagicImages {
		return nil, 0, 0, fmt.Errorf("dataset: bad image magic 0x%08x", hdr[0])
	}
	n, h, w := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if n < 0 || h <= 0 || w <= 0 || h*w > 1<<24 {
		return nil, 0, 0, fmt.Errorf("dataset: implausible idx dims n=%d h=%d w=%d", n, h, w)
	}
	imgs = make([]mat.Vec, n)
	buf := make([]byte, h*w)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, 0, 0, fmt.Errorf("dataset: read image %d: %w", i, err)
		}
		img := make(mat.Vec, h*w)
		for j, b := range buf {
			img[j] = float64(b) / 255
		}
		imgs[i] = img
	}
	return imgs, w, h, nil
}

// ReadIDXLabels decodes an IDX label vector from r.
func ReadIDXLabels(r io.Reader) ([]int, error) {
	var hdr [2]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("dataset: read idx label header: %w", err)
		}
	}
	if hdr[0] != idxMagicLabels {
		return nil, fmt.Errorf("dataset: bad label magic 0x%08x", hdr[0])
	}
	n := int(hdr[1])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("dataset: read labels: %w", err)
	}
	out := make([]int, n)
	for i, b := range buf {
		out[i] = int(b)
	}
	return out, nil
}

// openMaybeGzip opens path, transparently decompressing .gz files (the form
// MNIST is distributed in).
func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	gz, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: gzip %s: %w", path, err)
	}
	return &gzipReadCloser{gz: gz, f: f}, nil
}

type gzipReadCloser struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.gz.Read(p) }

func (g *gzipReadCloser) Close() error {
	gzErr := g.gz.Close()
	fErr := g.f.Close()
	if gzErr != nil {
		return gzErr
	}
	return fErr
}

// LoadIDX loads a dataset from an IDX image file and label file pair
// (optionally gzip-compressed), attaching the given class names.
func LoadIDX(imagePath, labelPath, name string, classNames []string) (*Dataset, error) {
	ir, err := openMaybeGzip(imagePath)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", imagePath, err)
	}
	defer ir.Close()
	imgs, w, h, err := ReadIDXImages(bufio.NewReader(ir))
	if err != nil {
		return nil, err
	}
	lr, err := openMaybeGzip(labelPath)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", labelPath, err)
	}
	defer lr.Close()
	labels, err := ReadIDXLabels(bufio.NewReader(lr))
	if err != nil {
		return nil, err
	}
	if len(imgs) != len(labels) {
		return nil, fmt.Errorf("dataset: %d images vs %d labels", len(imgs), len(labels))
	}
	d := &Dataset{Name: name, Width: w, Height: h, X: imgs, Y: labels, Names: classNames}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveIDX writes the dataset as an IDX image/label file pair; paths ending
// in .gz are compressed.
func SaveIDX(d *Dataset, imagePath, labelPath string) error {
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		var w io.Writer = f
		var gz *gzip.Writer
		if strings.HasSuffix(path, ".gz") {
			gz = gzip.NewWriter(f)
			w = gz
		}
		bw := bufio.NewWriter(w)
		if err := fn(bw); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if gz != nil {
			return gz.Close()
		}
		return nil
	}
	if err := write(imagePath, func(w io.Writer) error { return WriteIDXImages(w, d) }); err != nil {
		return fmt.Errorf("dataset: save images: %w", err)
	}
	if err := write(labelPath, func(w io.Writer) error { return WriteIDXLabels(w, d) }); err != nil {
		return fmt.Errorf("dataset: save labels: %w", err)
	}
	return nil
}
