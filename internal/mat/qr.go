package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m-by-n matrix with m >= n,
// in the classic LINPACK packed layout: the Householder vectors live on and
// below the diagonal of qr, the strict upper triangle of R above it, and the
// diagonal of R in rdiag. It is the least-squares engine behind the LIME
// baselines and the ridge solver.
type QR struct {
	qr    *Dense
	rdiag Vec
	m, n  int
}

// FactorQR computes the QR factorization of a (rows >= cols required).
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("mat: FactorQR needs rows >= cols, got %dx%d: %w", m, n, ErrShape)
	}
	f := &QR{qr: a.Clone(), rdiag: make(Vec, n), m: m, n: n}
	d := f.qr.data
	for k := 0; k < n; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, d[i*n+k])
		}
		if nrm != 0 {
			if d[k*n+k] < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				d[i*n+k] /= nrm
			}
			d[k*n+k] += 1
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += d[i*n+k] * d[i*n+j]
				}
				s = -s / d[k*n+k]
				for i := k; i < m; i++ {
					d[i*n+j] += s * d[i*n+k]
				}
			}
		}
		f.rdiag[k] = -nrm
	}
	return f, nil
}

// RDiag returns a copy of the diagonal of R.
func (f *QR) RDiag() Vec { return f.rdiag.Clone() }

// Rank returns the numerical rank of R: the count of diagonal entries larger
// than tol times the largest diagonal magnitude.
func (f *QR) Rank(tol float64) int {
	var maxAbs float64
	for _, v := range f.rdiag {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	rank := 0
	for _, v := range f.rdiag {
		if math.Abs(v) > tol*maxAbs {
			rank++
		}
	}
	return rank
}

// IsFullRank reports whether R has no (near-)zero diagonal entries.
func (f *QR) IsFullRank(tol float64) bool { return f.Rank(tol) == f.n }

// applyQT overwrites y (length m) with Q^T y.
func (f *QR) applyQT(y Vec) {
	m, n := f.m, f.n
	d := f.qr.data
	for k := 0; k < n; k++ {
		if d[k*n+k] == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += d[i*n+k] * y[i]
		}
		s = -s / d[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * d[i*n+k]
		}
	}
}

// SolveVec returns the least-squares solution x minimizing ||A x - b||_2.
// It returns ErrSingular when R is numerically rank deficient.
func (f *QR) SolveVec(b Vec) (Vec, error) {
	if len(b) != f.m {
		return nil, fmt.Errorf("mat: QR SolveVec rhs length %d != %d: %w", len(b), f.m, ErrShape)
	}
	if !f.IsFullRank(1e-13) {
		return nil, fmt.Errorf("mat: rank-deficient least squares: %w", ErrSingular)
	}
	n := f.n
	d := f.qr.data
	y := b.Clone()
	f.applyQT(y)
	x := make(Vec, n)
	copy(x, y[:n])
	for k := n - 1; k >= 0; k-- {
		x[k] /= f.rdiag[k]
		for i := 0; i < k; i++ {
			x[i] -= x[k] * d[i*n+k]
		}
	}
	return x, nil
}

// ResidualNorm returns ||A x - b||_2 for the least-squares solution against
// b, read off the tail of Q^T b without forming A x.
func (f *QR) ResidualNorm(b Vec) (float64, error) {
	if len(b) != f.m {
		return 0, fmt.Errorf("mat: ResidualNorm rhs length %d != %d: %w", len(b), f.m, ErrShape)
	}
	y := b.Clone()
	f.applyQT(y)
	return y[f.n:].Norm2(), nil
}

// LeastSquares solves min ||A x - b||_2 via QR.
func LeastSquares(a *Dense, b Vec) (Vec, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// RidgeSolve solves the ridge regression problem
// min ||A x - b||^2 + lambda ||x||^2 via the augmented least-squares system
// [A; sqrt(lambda) I] x = [b; 0]. With lambda = 0 it degrades to plain least
// squares. skipCols lists column indices exempt from the penalty (use it to
// leave intercepts unregularized).
func RidgeSolve(a *Dense, b Vec, lambda float64, skipCols ...int) (Vec, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("mat: RidgeSolve negative lambda %g", lambda)
	}
	m, n := a.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("mat: RidgeSolve rhs length %d != %d: %w", len(b), m, ErrShape)
	}
	if lambda == 0 {
		return LeastSquares(a, b)
	}
	skip := make(map[int]bool, len(skipCols))
	for _, c := range skipCols {
		skip[c] = true
	}
	aug := NewDense(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.RawRow(i), a.RawRow(i))
	}
	s := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		if skip[j] {
			continue
		}
		aug.Set(m+j, j, s)
	}
	bb := make(Vec, m+n)
	copy(bb, b)
	return LeastSquares(aug, bb)
}
