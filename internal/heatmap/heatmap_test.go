package heatmap

import (
	"image"
	"image/png"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mat"
)

func TestGrayscale(t *testing.T) {
	img, err := Grayscale(mat.Vec{0, 0.5, 1, 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.GrayAt(0, 0).Y != 0 {
		t.Fatalf("pixel (0,0) = %d", img.GrayAt(0, 0).Y)
	}
	if img.GrayAt(1, 0).Y != 128 {
		t.Fatalf("pixel (1,0) = %d", img.GrayAt(1, 0).Y)
	}
	if img.GrayAt(0, 1).Y != 255 {
		t.Fatalf("pixel (0,1) = %d", img.GrayAt(0, 1).Y)
	}
	// Out-of-range clamps.
	if img.GrayAt(1, 1).Y != 255 {
		t.Fatalf("clamped pixel = %d", img.GrayAt(1, 1).Y)
	}
	if _, err := Grayscale(mat.Vec{1}, 2, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDivergingColors(t *testing.T) {
	img, err := Diverging(mat.Vec{1, -1, 0, 0.5}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Most positive -> pure red.
	c := img.RGBAAt(0, 0)
	if c.R != 255 || c.G != 0 || c.B != 0 {
		t.Fatalf("positive pixel = %+v", c)
	}
	// Most negative -> pure blue.
	c = img.RGBAAt(1, 0)
	if c.R != 0 || c.G != 0 || c.B != 255 {
		t.Fatalf("negative pixel = %+v", c)
	}
	// Zero -> white.
	c = img.RGBAAt(0, 1)
	if c.R != 255 || c.G != 255 || c.B != 255 {
		t.Fatalf("zero pixel = %+v", c)
	}
	// All-zero input renders without dividing by zero.
	if _, err := Diverging(mat.NewVec(4), 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSavePNG(t *testing.T) {
	img, err := Grayscale(mat.Vec{0, 1, 1, 0}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.png")
	if err := SavePNG(path, img); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 2 || decoded.Bounds().Dy() != 2 {
		t.Fatal("decoded bounds wrong")
	}
	if err := SavePNG(filepath.Join(t.TempDir(), "no/such/dir/x.png"), img); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestASCII(t *testing.T) {
	out, err := ASCII(mat.Vec{0, 1, 0.5, 0}, 2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("shape wrong: %q", out)
	}
	if lines[0][0] != ' ' || lines[0][1] != '@' {
		t.Fatalf("ramp wrong: %q", lines[0])
	}
	// Signed mode distinguishes polarity.
	signed, err := ASCII(mat.Vec{1, -1, 0, 0}, 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if signed[0] != '@' || signed[1] != 'i' {
		t.Fatalf("signed ramp wrong: %q", signed)
	}
	if _, err := ASCII(mat.Vec{1}, 3, 3, false); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestMontage(t *testing.T) {
	g1, err := Grayscale(mat.Vec{0, 1, 1, 0}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Diverging(mat.Vec{1, -1, 0, 0.5}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Montage([][]image.Image{{g1, d1}, {nil, g1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 cols x 2px + 3 pads = 7 wide; 2 rows x 2px + 3 pads = 7 tall.
	if m.Bounds().Dx() != 7 || m.Bounds().Dy() != 7 {
		t.Fatalf("montage bounds = %v", m.Bounds())
	}
	// Gutter is white.
	if r, g, b, _ := m.At(0, 0).RGBA(); r != 0xffff || g != 0xffff || b != 0xffff {
		t.Fatal("gutter not white")
	}
	// The nil cell stays white.
	if r, g, b, _ := m.At(1, 4).RGBA(); r != 0xffff || g != 0xffff || b != 0xffff {
		t.Fatal("nil cell not blank")
	}
	// First cell's (1,0) pixel is gray value 255 from g1 (index 1 = 1.0).
	if r, _, _, _ := m.At(2, 1).RGBA(); r != 0xffff {
		t.Fatal("image content missing")
	}
}

func TestMontageErrors(t *testing.T) {
	if _, err := Montage(nil, 1); err == nil {
		t.Fatal("empty montage accepted")
	}
	if _, err := Montage([][]image.Image{{nil}}, 1); err == nil {
		t.Fatal("all-nil montage accepted")
	}
	small, _ := Grayscale(mat.Vec{0}, 1, 1)
	big, _ := Grayscale(mat.Vec{0, 0, 0, 0}, 2, 2)
	if _, err := Montage([][]image.Image{{small, big}}, 0); err == nil {
		t.Fatal("mismatched cell sizes accepted")
	}
}

func TestSideBySide(t *testing.T) {
	a := "ab\ncd\n"
	b := "12\n34\n"
	got := SideBySide([]string{a, b}, " | ")
	want := "ab | 12\ncd | 34\n"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	if SideBySide(nil, "|") != "" {
		t.Fatal("empty input should give empty output")
	}
	// Ragged heights pad gracefully.
	got = SideBySide([]string{"x\n", "1\n2\n"}, "|")
	if !strings.Contains(got, "x|1") {
		t.Fatalf("ragged join = %q", got)
	}
}
