package lmt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Config controls LMT induction. The two stopping rules are the paper's:
// a node becomes a leaf when it holds fewer than MinLeaf instances or its
// regression classifier exceeds StopAccuracy on the node's data.
type Config struct {
	MinLeaf       int     // minimum instances to split a node (default 100)
	StopAccuracy  float64 // leaf accuracy that stops splitting (default 0.99)
	MaxDepth      int     // safety cap on tree depth (default 12)
	MaxThresholds int     // candidate thresholds per feature (default 16)
	MaxFeatures   int     // features examined per split; 0 = all
	LogReg        LogRegConfig
}

func (c *Config) setDefaults() {
	if c.MinLeaf <= 0 {
		c.MinLeaf = 100
	}
	if c.StopAccuracy <= 0 || c.StopAccuracy > 1 {
		c.StopAccuracy = 0.99
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MaxThresholds <= 0 {
		c.MaxThresholds = 16
	}
	if c.MaxFeatures < 0 {
		c.MaxFeatures = 0
	}
}

// Node is one tree node: either an internal gain-ratio split on a single
// pivot feature, or a leaf holding a logistic regression classifier.
type Node struct {
	Feature   int     // split feature (internal nodes)
	Threshold float64 // go left when x[Feature] <= Threshold
	Left      *Node
	Right     *Node
	Leaf      *LogReg // non-nil exactly for leaves
	LeafID    int     // dense leaf index (leaves only)
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Leaf != nil }

// Tree is a trained logistic model tree.
type Tree struct {
	Root      *Node
	dim       int
	classes   int
	numLeaves int
}

var _ plm.RegionModel = (*Tree)(nil)

// Train grows an LMT on (xs, labels) with classes in [0, classes).
// rng drives the optional feature subsampling; pass any seeded source.
func Train(rng *rand.Rand, xs []mat.Vec, labels []int, classes int, cfg Config) (*Tree, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("lmt: empty training set")
	}
	if len(xs) != len(labels) {
		return nil, fmt.Errorf("lmt: %d inputs vs %d labels", len(xs), len(labels))
	}
	if classes < 2 {
		return nil, fmt.Errorf("lmt: need at least 2 classes, got %d", classes)
	}
	cfg.setDefaults()
	d := len(xs[0])
	t := &Tree{dim: d, classes: classes}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	root, err := t.build(rng, xs, labels, idx, 0, cfg)
	if err != nil {
		return nil, err
	}
	t.Root = root
	return t, nil
}

func (t *Tree) build(rng *rand.Rand, xs []mat.Vec, labels []int, idx []int, depth int, cfg Config) (*Node, error) {
	sub := make([]mat.Vec, len(idx))
	subLabels := make([]int, len(idx))
	for i, id := range idx {
		sub[i] = xs[id]
		subLabels[i] = labels[id]
	}
	leaf, err := TrainLogReg(sub, subLabels, t.classes, cfg.LogReg)
	if err != nil {
		return nil, err
	}
	makeLeaf := func() *Node {
		n := &Node{Leaf: leaf, LeafID: t.numLeaves}
		t.numLeaves++
		return n
	}
	if len(idx) < cfg.MinLeaf || depth >= cfg.MaxDepth {
		return makeLeaf(), nil
	}
	if leaf.Accuracy(sub, subLabels) > cfg.StopAccuracy {
		return makeLeaf(), nil
	}
	feature, threshold, ok := t.bestSplit(rng, xs, labels, idx, cfg)
	if !ok {
		return makeLeaf(), nil
	}
	var left, right []int
	for _, id := range idx {
		if xs[id][feature] <= threshold {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return makeLeaf(), nil
	}
	ln, err := t.build(rng, xs, labels, left, depth+1, cfg)
	if err != nil {
		return nil, err
	}
	rn, err := t.build(rng, xs, labels, right, depth+1, cfg)
	if err != nil {
		return nil, err
	}
	return &Node{Feature: feature, Threshold: threshold, Left: ln, Right: rn}, nil
}

// bestSplit selects the (feature, threshold) with the highest C4.5 gain
// ratio among splits with positive information gain.
func (t *Tree) bestSplit(rng *rand.Rand, xs []mat.Vec, labels []int, idx []int, cfg Config) (int, float64, bool) {
	baseCounts := make([]int, t.classes)
	for _, id := range idx {
		baseCounts[labels[id]]++
	}
	baseEntropy := entropy(baseCounts, len(idx))
	if baseEntropy == 0 {
		return 0, 0, false // pure node, nothing to gain
	}

	features := make([]int, t.dim)
	for i := range features {
		features[i] = i
	}
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < t.dim {
		rng.Shuffle(len(features), func(i, j int) {
			features[i], features[j] = features[j], features[i]
		})
		features = features[:cfg.MaxFeatures]
	}

	bestRatio := 0.0
	bestFeature, bestThreshold := -1, 0.0
	values := make([]float64, len(idx))
	for _, f := range features {
		for i, id := range idx {
			values[i] = xs[id][f]
		}
		for _, thr := range candidateThresholds(values, cfg.MaxThresholds) {
			leftCounts := make([]int, t.classes)
			nLeft := 0
			for _, id := range idx {
				if xs[id][f] <= thr {
					leftCounts[labels[id]]++
					nLeft++
				}
			}
			nRight := len(idx) - nLeft
			if nLeft == 0 || nRight == 0 {
				continue
			}
			rightCounts := make([]int, t.classes)
			for c := range rightCounts {
				rightCounts[c] = baseCounts[c] - leftCounts[c]
			}
			pl := float64(nLeft) / float64(len(idx))
			pr := 1 - pl
			gain := baseEntropy - pl*entropy(leftCounts, nLeft) - pr*entropy(rightCounts, nRight)
			if gain <= 1e-12 {
				continue
			}
			splitInfo := -pl*math.Log2(pl) - pr*math.Log2(pr)
			if splitInfo <= 1e-12 {
				continue
			}
			if ratio := gain / splitInfo; ratio > bestRatio {
				bestRatio, bestFeature, bestThreshold = ratio, f, thr
			}
		}
	}
	return bestFeature, bestThreshold, bestFeature >= 0
}

// candidateThresholds returns up to k split points for a feature column:
// midpoints between distinct consecutive sorted values, quantile-thinned
// when there are more than k of them.
func candidateThresholds(values []float64, k int) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var mids []float64
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			mids = append(mids, (sorted[i]+sorted[i-1])/2)
		}
	}
	if len(mids) <= k {
		return mids
	}
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		pos := (i + 1) * len(mids) / (k + 1)
		if pos >= len(mids) {
			pos = len(mids) - 1
		}
		out = append(out, mids[pos])
	}
	return out
}

func entropy(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// leafFor routes x to its leaf node.
func (t *Tree) leafFor(x mat.Vec) *Node {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Predict returns the class probabilities of the leaf classifier for x.
func (t *Tree) Predict(x mat.Vec) mat.Vec {
	t.checkInput(x)
	return t.leafFor(x).Leaf.Predict(x)
}

// PredictLabel returns the argmax class for x.
func (t *Tree) PredictLabel(x mat.Vec) int {
	t.checkInput(x)
	return t.leafFor(x).Leaf.PredictLabel(x)
}

// Accuracy returns the fraction of xs classified as labels.
func (t *Tree) Accuracy(xs []mat.Vec, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if t.PredictLabel(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// Dim returns the input dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Classes returns the number of classes.
func (t *Tree) Classes() int { return t.classes }

// NumLeaves returns the number of leaves (= locally linear regions).
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.Root) }

func depthOf(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := depthOf(n.Left), depthOf(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// RegionKey identifies the leaf (= locally linear region) containing x.
func (t *Tree) RegionKey(x mat.Vec) string {
	t.checkInput(x)
	return fmt.Sprintf("lmt-leaf-%d", t.leafFor(x).LeafID)
}

// LocalAt returns the leaf classifier as the region's locally linear
// classifier — the exact ground truth the paper extracts from an LMT.
func (t *Tree) LocalAt(x mat.Vec) (*plm.Linear, error) {
	t.checkInput(x)
	leaf := t.leafFor(x)
	return leaf.Leaf.Linear(fmt.Sprintf("lmt-leaf-%d", leaf.LeafID))
}

// RegionPattern is the per-family pattern hook: one tree descent yields the
// leaf, which is both the region key and everything the composer needs —
// a region-cache miss no longer walks the tree a second time.
func (t *Tree) RegionPattern(x mat.Vec) (string, func() (*plm.Linear, error), error) {
	if len(x) != t.dim {
		return "", nil, fmt.Errorf("lmt: input length %d != %d", len(x), t.dim)
	}
	leaf := t.leafFor(x)
	key := fmt.Sprintf("lmt-leaf-%d", leaf.LeafID)
	return key, func() (*plm.Linear, error) { return leaf.Leaf.Linear(key) }, nil
}

var _ plm.PatternRegionModel = (*Tree)(nil)

func (t *Tree) checkInput(x mat.Vec) {
	if len(x) != t.dim {
		panic(fmt.Sprintf("lmt: input length %d != %d", len(x), t.dim))
	}
}
