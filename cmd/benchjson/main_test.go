package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	rec, ok := parseLine("BenchmarkLogitsBatch256-8   \t     50\t  9023498 ns/op\t 1234 B/op\t  12 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if rec.Name != "BenchmarkLogitsBatch256" {
		t.Fatalf("name %q", rec.Name)
	}
	if rec.Iterations != 50 || rec.NsPerOp != 9023498 {
		t.Fatalf("parsed %+v", rec)
	}
	if rec.Metrics["B/op"] != 1234 || rec.Metrics["allocs/op"] != 12 {
		t.Fatalf("metrics %v", rec.Metrics)
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	rec, ok := parseLine("BenchmarkExtract_RegionCache  10  830879 ns/op")
	if !ok || rec.Name != "BenchmarkExtract_RegionCache" {
		t.Fatalf("parsed %+v ok=%v", rec, ok)
	}
}

func rec(name string, ns float64) Record {
	return Record{Name: name, Iterations: 10, NsPerOp: ns}
}

func TestCompareWithinToleranceAndImprovementsPass(t *testing.T) {
	fresh := []Record{rec("BenchmarkA", 130), rec("BenchmarkB", 50), rec("BenchmarkNew", 999)}
	ref := []Record{rec("BenchmarkA", 100), rec("BenchmarkB", 100)}
	report, failures := compareRecords(fresh, ref, 0.35)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	// Only reference benchmarks are gated; BenchmarkNew rides along free.
	if len(report) != 2 {
		t.Fatalf("report = %v", report)
	}
}

func TestCompareFlagsRegressionBeyondTolerance(t *testing.T) {
	fresh := []Record{rec("BenchmarkA", 136)}
	ref := []Record{rec("BenchmarkA", 100)}
	_, failures := compareRecords(fresh, ref, 0.35)
	if len(failures) != 1 || !strings.Contains(failures[0], "REGRESSION") {
		t.Fatalf("failures = %v", failures)
	}
	// Exactly at the bound passes (strict >).
	if _, f := compareRecords([]Record{rec("BenchmarkA", 135)}, ref, 0.35); len(f) != 0 {
		t.Fatalf("at-bound run should pass, got %v", f)
	}
}

func TestCompareFailsOnVanishedBenchmark(t *testing.T) {
	fresh := []Record{rec("BenchmarkA", 100)}
	ref := []Record{rec("BenchmarkA", 100), rec("BenchmarkGone", 100)}
	_, failures := compareRecords(fresh, ref, 0.35)
	if len(failures) != 1 || !strings.Contains(failures[0], "MISSING BenchmarkGone") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareLaterSnapshotOverridesEarlier(t *testing.T) {
	// The same benchmark re-recorded in a later snapshot (a faster
	// implementation landed) must be gated against the newer number.
	fresh := []Record{rec("BenchmarkA", 180)}
	ref := []Record{rec("BenchmarkA", 500), rec("BenchmarkA", 100)}
	report, failures := compareRecords(fresh, ref, 0.35)
	if len(report) != 1 {
		t.Fatalf("report = %v", report)
	}
	if len(failures) != 1 {
		t.Fatalf("expected regression vs overriding snapshot (100), got %v", failures)
	}
}

func TestLoadSnapshotsMergesFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a.json", `[{"name":"BenchmarkA","iterations":1,"ns_per_op":100}]`)
	b := write("b.json", `[{"name":"BenchmarkB","iterations":1,"ns_per_op":200}]`)
	recs, err := loadSnapshots([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "BenchmarkA" || recs[1].Name != "BenchmarkB" {
		t.Fatalf("recs = %+v", recs)
	}
	if _, err := loadSnapshots([]string{dir + "/missing.json"}); err == nil {
		t.Fatal("missing snapshot file should error")
	}
	bad := write("bad.json", `{not json]`)
	if _, err := loadSnapshots([]string{bad}); err == nil {
		t.Fatal("malformed snapshot should error")
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro/internal/nn",
		"PASS",
		"ok  \trepro/internal/nn\t0.412s",
		"BenchmarkBroken x ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise line accepted: %q", line)
		}
	}
}
