// Package lru provides the one string-keyed LRU bookkeeping structure the
// repository's caches share (api.ResponseCache, openbox.RegionCache and the
// generic region-model wrapper). It is deliberately not goroutine-safe:
// every consumer already holds its own mutex around cache operations and
// keeps its own hit/miss/eviction counters, which differ per cache.
package lru

import "container/list"

// Cache is a least-recently-used map from string keys to values. A
// capacity <= 0 means unbounded. The zero value is not usable; call New.
type Cache[V any] struct {
	cap     int
	entries map[string]*list.Element
	ll      *list.List // front = most recently used
}

type entry[V any] struct {
	key string
	val V
}

// New returns an empty cache holding at most capacity entries
// (capacity <= 0 means unbounded).
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		ll:      list.New(),
	}
}

// Get returns the value under key, promoting it to most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	el, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Add inserts v under key and reports what happened. When the key is
// already present the incumbent is kept and promoted — concurrent fillers
// that raced to compute the same value then all share one result — and
// returned as kept. On a fresh insert that overflows the capacity the
// least-recently-used entry is dropped and evicted is true.
func (c *Cache[V]) Add(key string, v V) (kept V, inserted, evicted bool) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, false, false
	}
	c.entries[key] = c.ll.PushFront(&entry[V]{key: key, val: v})
	if c.cap > 0 && c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[V]).key)
		return v, true, true
	}
	return v, true, false
}

// AddWithEvicted behaves exactly like Add but also returns the displaced
// value when an eviction happened, so byte-accounting callers can subtract
// the evicted entry's footprint without a second lookup.
func (c *Cache[V]) AddWithEvicted(key string, v V) (kept V, inserted, evicted bool, displaced V) {
	var zero V
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, false, false, zero
	}
	c.entries[key] = c.ll.PushFront(&entry[V]{key: key, val: v})
	if c.cap > 0 && c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		old := oldest.Value.(*entry[V])
		delete(c.entries, old.key)
		return v, true, true, old.val
	}
	return v, true, false, zero
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int { return c.ll.Len() }
