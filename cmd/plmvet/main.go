// Command plmvet is the repository's static-analysis gate: it runs the
// internal/analysis suite (detfloat, atomicfield, lockheld, kernelpurity)
// over Go packages and fails when any invariant is violated.
//
// Two modes share the analyzers and the allow-annotation filter:
//
//	plmvet ./...                     # standalone, resolves patterns itself
//	go vet -vettool=$(which plmvet) ./...   # unit-checker under cmd/go
//
// The second form is what CI runs: cmd/go hands the tool one pre-planned
// package at a time via a vet.cfg file, with every dependency's export data
// already compiled into the build cache, and caches clean results per
// package. The protocol (the -V=full tool-ID handshake, the -flags JSON
// handshake, and the vet.cfg/vetx exchange) is implemented here directly so
// the repository needs no dependency on golang.org/x/tools.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Handshakes come before normal flag parsing: cmd/go probes the tool
	// with `-V=full` (a content-addressed tool ID for its action cache)
	// and `-flags` (the JSON flag inventory) before ever passing a
	// vet.cfg.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printToolID()
			return 0
		case "-flags", "--flags":
			printFlagDefs()
			return 0
		}
	}

	fs := flag.NewFlagSet("plmvet", flag.ContinueOnError)
	selection := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.ByName(*selection)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(analyzers, rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(analyzers, rest)
}

// printToolID emits the -V=full line cmd/go hashes into its action cache
// key. The "devel" form requires the last field to be buildID=<id>; using a
// digest of the executable means a rebuilt plmvet invalidates cached vet
// results, exactly like a recompiled vet tool should.
func printToolID() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	fmt.Printf("%s version devel buildID=%s\n", name, executableDigest())
}

func executableDigest() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// printFlagDefs emits the JSON flag inventory cmd/go uses to validate
// pass-through vet flags.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{
		{Name: "analyzers", Bool: false, Usage: "comma-separated analyzer subset (default: all)"},
	}
	json.NewEncoder(os.Stdout).Encode(defs)
}

// vetConfig mirrors the JSON cmd/go writes for each vet action.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes the single package described by a vet.cfg.
func runVetTool(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "plmvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The vetx file carries cross-package facts; this suite has none, but
	// cmd/go requires the output to exist to cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files[i] = f
	}
	pkg, err := analysis.CheckFiles(fset, cfgImporter(fset, &cfg), cfg.ImportPath, files, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(analyzers, fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return report(fset, diags)
}

// cfgImporter resolves imports through the vet.cfg's ImportMap (source path
// → canonical path) and PackageFile (canonical path → export data) tables.
func cfgImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	return analysis.LookupImporter(fset, func(path string) (io.ReadCloser, error) {
		canonical := path
		if mapped, ok := cfg.ImportMap[path]; ok {
			canonical = mapped
		}
		file, ok := cfg.PackageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("plmvet: no export data for %q (canonical %q)", path, canonical)
		}
		return os.Open(file)
	})
}

// runStandalone resolves the patterns itself and analyzes every matched
// module package.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string) int {
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if report(pkg.Fset, diags) != 0 {
			exit = 1
		}
	}
	return exit
}

// report prints diagnostics in the standard file:line:col format and
// returns 1 if there were any.
func report(fset *token.FileSet, diags []analysis.Diagnostic) int {
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
