package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Atomicfield enforces all-or-nothing atomicity per struct field: a field
// that is ever passed to a sync/atomic function (atomic.AddInt64(&s.n, 1)
// and friends) must be accessed through sync/atomic at every other site in
// the package. A single plain read of such a field is a data race the
// moment the atomic writer runs concurrently — and on the /stats paths the
// racy read surfaces as a torn or stale counter, which the benchmark
// trajectory then records as a real regression.
//
// The typed atomics (atomic.Int64 et al.) make this mistake impossible by
// construction and are the repository's preferred idiom; this analyzer
// exists so the function-style escape hatch cannot be half-adopted.
// Single-goroutine setup before publication can be annotated with
// //plmvet:allow(atomicfield).
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere",
	Run: runAtomicfield,
}

func runAtomicfield(pass *Pass) error {
	// Pass 1: find every field that appears as &field in a sync/atomic
	// call, remembering the selector nodes so pass 2 can exempt them.
	atomicFields := make(map[types.Object]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(pass.TypesInfo, call)
			if !ok || pkg != "sync/atomic" || !isAtomicAccessor(name) || len(call.Args) == 0 {
				return true
			}
			sel := addressedField(call.Args[0])
			if sel == nil {
				return true
			}
			if obj := fieldObject(pass.TypesInfo, sel); obj != nil {
				atomicFields[obj] = true
				sanctioned[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// plain access.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			obj := fieldObject(pass.TypesInfo, sel)
			if obj == nil || !atomicFields[obj] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races with the atomic writers", sel.Sel.Name)
			return true
		})
	}
	return nil
}

// isAtomicAccessor reports whether name is a sync/atomic function that
// reads or writes through its pointer argument.
func isAtomicAccessor(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addressedField unwraps &expr down to a field selector.
func addressedField(e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// fieldObject resolves a selector to the struct field it names, or nil for
// methods, package members and qualified identifiers.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
