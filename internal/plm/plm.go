// Package plm defines the shared vocabulary of the reproduction: what a
// piecewise linear model looks like from the outside (a probability oracle),
// what it looks like from the inside (a locally linear classifier per
// region), and the paper's derived quantities — core parameters and decision
// features — computed from a region's affine map.
package plm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Model is the black-box view of a classifier: class probabilities only.
// This is exactly the surface a cloud API exposes.
type Model interface {
	// Predict returns the softmax class probabilities for x.
	Predict(x mat.Vec) mat.Vec
	// Dim returns the input dimensionality d.
	Dim() int
	// Classes returns the number of classes C.
	Classes() int
}

// BatchPredictor is an optional extension of Model: services that expose a
// batch endpoint can answer many probes in one round trip, and local models
// with a batched forward (openbox.PLNN, openbox.Maxout — one GEMM per layer
// instead of one matrix-vector product per instance) can answer them at
// hardware speed. Interpreters probe for it with a type assertion and fall
// back to per-instance Predict. Implementations must return answers
// bit-identical to per-instance Predict: callers treat the batch path as a
// pure throughput decision.
type BatchPredictor interface {
	// PredictBatch returns one probability vector per input.
	PredictBatch(xs []mat.Vec) ([]mat.Vec, error)
}

// PredictAll evaluates the model on every input, using the batch endpoint
// when the model offers one and transparently falling back otherwise.
func PredictAll(m Model, xs []mat.Vec) []mat.Vec {
	if bp, ok := m.(BatchPredictor); ok {
		if out, err := bp.PredictBatch(xs); err == nil && len(out) == len(xs) {
			return out
		}
		// Fall through to per-instance probing on any batch failure.
	}
	out := make([]mat.Vec, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// RegionModel is the white-box view used only for ground truth and the
// Region Difference metric: a PLM that can reveal which locally linear
// region an instance falls in and the region's affine classifier.
type RegionModel interface {
	Model
	// RegionKey returns a stable identifier of the locally linear region
	// containing x. Two instances share a region iff their keys are equal.
	RegionKey(x mat.Vec) string
	// LocalAt returns the locally linear classifier valid on the region
	// containing x.
	LocalAt(x mat.Vec) (*Linear, error)
}

// PatternRegionModel is an optional extension of RegionModel: one forward
// pass (or tree descent) yields both the region's identity and a composer
// that builds the region's classifier from the captured pattern without
// revisiting the input. Region caches probe for it with a type assertion —
// a cache hit then costs exactly the one pattern-building pass (the way a
// PLNN's pattern-keyed RegionCache already works), and a miss composes
// straight from the pattern instead of re-deriving it from x.
type PatternRegionModel interface {
	RegionModel
	// RegionPattern returns the key of the region containing x and a
	// compose function producing the region's classifier. compose must be
	// bit-identical to LocalAt(x) and must not re-run the forward pass.
	RegionPattern(x mat.Vec) (key string, compose func() (*Linear, error), err error)
}

// Linear is a locally linear classifier σ(W x + b). W is stored
// row-per-class (C-by-d): row c is the paper's column W_c.
type Linear struct {
	W   *mat.Dense // C x d
	B   mat.Vec    // C
	Key string     // region identifier (optional)
}

// NewLinear validates shapes and wraps (w, b) as a Linear.
func NewLinear(w *mat.Dense, b mat.Vec, key string) (*Linear, error) {
	if w == nil {
		return nil, fmt.Errorf("plm: nil weight matrix")
	}
	if w.Rows() != len(b) {
		return nil, fmt.Errorf("plm: %d weight rows vs %d biases", w.Rows(), len(b))
	}
	if w.Rows() < 2 {
		return nil, fmt.Errorf("plm: need at least 2 classes, got %d", w.Rows())
	}
	return &Linear{W: w, B: b, Key: key}, nil
}

// Classes returns the number of classes C.
func (l *Linear) Classes() int { return l.W.Rows() }

// Dim returns the input dimensionality d.
func (l *Linear) Dim() int { return l.W.Cols() }

// Logits returns W x + b.
func (l *Linear) Logits(x mat.Vec) mat.Vec {
	out := make(mat.Vec, l.Classes())
	return l.W.MulVecInto(x, out).AddInPlace(l.B)
}

// CoreParams returns the paper's core parameters of the region for the class
// pair (c, c'): (D_{c,c'}, B_{c,c'}) = (W_c − W_{c'}, b_c − b_{c'}). They
// satisfy the log-odds identity D^T x + B = ln(y_c / y_{c'}) on the region.
func (l *Linear) CoreParams(c, cp int) (mat.Vec, float64) {
	l.checkClass(c)
	l.checkClass(cp)
	d := l.W.Row(c).SubInPlace(l.W.RawRow(cp))
	return d, l.B[c] - l.B[cp]
}

// DecisionFeatures returns the paper's D_c (Eq. 1): the average of
// W_c − W_{c'} over the other C−1 classes. Positive entries support class c,
// negative entries oppose it.
func (l *Linear) DecisionFeatures(c int) mat.Vec {
	l.checkClass(c)
	C := l.Classes()
	// Σ_{c'≠c}(W_c − W_{c'}) = C·W_c − Σ_all W_{c'}.
	sum := mat.NewVec(l.Dim())
	for r := 0; r < C; r++ {
		sum.AddInPlace(l.W.RawRow(r))
	}
	out := l.W.Row(c).ScaleInPlace(float64(C)).SubInPlace(sum)
	return out.ScaleInPlace(1 / float64(C-1))
}

// DecisionBias returns the matching averaged bias offset
// (1/(C−1)) Σ_{c'≠c} (b_c − b_{c'}).
func (l *Linear) DecisionBias(c int) float64 {
	l.checkClass(c)
	C := l.Classes()
	var sum float64
	for r := 0; r < C; r++ {
		sum += l.B[r]
	}
	return (float64(C)*l.B[c] - sum) / float64(C-1)
}

func (l *Linear) checkClass(c int) {
	if c < 0 || c >= l.Classes() {
		panic(fmt.Sprintf("plm: class %d out of range %d", c, l.Classes()))
	}
}

// Interpretation is the result of running any interpreter on one instance:
// the recovered decision features for the target class, the recovered core
// parameter pairs when the method produces them, and bookkeeping about the
// probing effort. Baselines that do not estimate biases leave Biases nil.
type Interpretation struct {
	Class      int       // interpreted class c
	Features   mat.Vec   // D_c estimate, length d
	PairDiffs  []mat.Vec // D_{c,c'} estimates indexed by c' (entry c is nil)
	Biases     []float64 // B_{c,c'} estimates indexed by c' (may be nil)
	Samples    []mat.Vec // perturbed instances the method actually used (nil for white-box methods)
	Queries    int       // API calls consumed
	Iterations int       // outer iterations (OpenAPI's T; 1 for one-shot methods)
	FinalEdge  float64   // hypercube edge length actually used (0 if n/a)
	Exact      bool      // method claims exactness (OpenAPI w.p. 1)
}

// FeatureWeight pairs a feature index with its decision weight.
type FeatureWeight struct {
	Index  int
	Weight float64
}

// TopK returns the k features with the largest absolute weights, strongest
// first. Ties keep the lower index first; k larger than d returns all
// features.
func (in *Interpretation) TopK(k int) []FeatureWeight {
	if k > len(in.Features) {
		k = len(in.Features)
	}
	if k <= 0 {
		return nil
	}
	out := make([]FeatureWeight, len(in.Features))
	for i, w := range in.Features {
		out[i] = FeatureWeight{Index: i, Weight: w}
	}
	sort.SliceStable(out, func(a, b int) bool {
		wa, wb := math.Abs(out[a].Weight), math.Abs(out[b].Weight)
		return wa > wb
	})
	return out[:k]
}

// Supporting returns the feature indices with strictly positive weight —
// those that push the model toward the interpreted class.
func (in *Interpretation) Supporting() []int {
	var out []int
	for i, w := range in.Features {
		if w > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Opposing returns the feature indices with strictly negative weight.
func (in *Interpretation) Opposing() []int {
	var out []int
	for i, w := range in.Features {
		if w < 0 {
			out = append(out, i)
		}
	}
	return out
}

// StoreStats is the one accounting shape every cache and store in the
// repository reports — response caches, region caches, and the disk atlas
// alike — so /stats dashboards parse a single schema instead of one ad-hoc
// section per cache. Size is the number of live entries; Bytes is the
// approximate footprint (0 when a store does not track it).
type StoreStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Bytes     int64 `json:"bytes"`
}

// Add returns the entrywise sum of two stat snapshots — how a tiered store
// reports the combined work of its layers.
func (s StoreStats) Add(o StoreStats) StoreStats {
	return StoreStats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
		Size:      s.Size + o.Size,
		Bytes:     s.Bytes + o.Bytes,
	}
}

// LinearBytes estimates the in-memory footprint of a region's closed form:
// the W payload plus the bias vector, in float64s. Stores use it for byte
// accounting; it intentionally ignores struct headers.
func LinearBytes(l *Linear) int64 {
	if l == nil {
		return 0
	}
	return int64(l.W.Rows()*l.W.Cols()+len(l.B)) * 8
}

// Interpreter is the common surface of OpenAPI and every baseline.
type Interpreter interface {
	// Name returns a short identifier used in experiment tables ("OpenAPI",
	// "LIME-Linear", ...).
	Name() string
	// Interpret explains why model classifies x as class c.
	Interpret(model Model, x mat.Vec, c int) (*Interpretation, error)
}

// LogOdds returns ln(p_c / p_{c'}) with both probabilities floored at the
// smallest positive normal float64 so saturated softmax outputs yield a
// large-but-finite value instead of ±Inf. The paper's §V-D discusses exactly
// this failure mode for tiny perturbation distances.
func LogOdds(p mat.Vec, c, cp int) float64 {
	return logFloor(p[c]) - logFloor(p[cp])
}

func logFloor(v float64) float64 {
	const floor = 2.2250738585072014e-308 // smallest positive normal
	if v < floor {
		v = floor
	}
	return math.Log(v)
}
