package mat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestDenseAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At = %v", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero value = %v", got)
	}
}

func TestDenseBounds(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.RawRow(5) },
		func() { m.Col(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected bounds panic")
				}
			}()
			fn()
		}()
	}
}

func TestDenseFromRowsAndCols(t *testing.T) {
	m := FromRows(Vec{1, 2}, Vec{3, 4}, Vec{5, 6})
	if r, c := m.Dims(); r != 3 || c != 2 {
		t.Fatalf("Dims = %dx%d", r, c)
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("Col = %v", got)
	}
	if got := m.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Row = %v", got)
	}
	empty := FromRows()
	if r, c := empty.Dims(); r != 0 || c != 0 {
		t.Fatalf("empty FromRows = %dx%d", r, c)
	}
}

func TestDenseSetRowCol(t *testing.T) {
	m := NewDense(2, 2)
	m.SetRow(0, Vec{1, 2})
	m.SetCol(1, Vec{9, 8})
	if m.At(0, 0) != 1 || m.At(0, 1) != 9 || m.At(1, 1) != 8 {
		t.Fatalf("SetRow/SetCol got %v", m)
	}
}

func TestDenseMulVec(t *testing.T) {
	m := FromRows(Vec{1, 2}, Vec{3, 4})
	got := m.MulVec(Vec{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v", got)
	}
	gotT := m.MulVecT(Vec{5, 6})
	if gotT[0] != 23 || gotT[1] != 34 {
		t.Fatalf("MulVecT = %v", gotT)
	}
}

func TestDenseMul(t *testing.T) {
	a := FromRows(Vec{1, 2}, Vec{3, 4})
	b := FromRows(Vec{0, 1}, Vec{1, 0})
	got := a.Mul(b)
	want := FromRows(Vec{2, 1}, Vec{4, 3})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestDenseIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 4, 4)
	if !a.Mul(Identity(4)).EqualApprox(a, 1e-15) {
		t.Fatal("A*I != A")
	}
	if !Identity(4).Mul(a).EqualApprox(a, 1e-15) {
		t.Fatal("I*A != A")
	}
}

func TestDenseTranspose(t *testing.T) {
	a := FromRows(Vec{1, 2, 3}, Vec{4, 5, 6})
	at := a.T()
	if r, c := at.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %dx%d", r, c)
	}
	if at.At(2, 1) != 6 || at.At(0, 0) != 1 {
		t.Fatalf("T values wrong: %v", at)
	}
	if !a.T().T().EqualApprox(a, 0) {
		t.Fatal("double transpose != original")
	}
}

func TestDenseAddSubScale(t *testing.T) {
	a := FromRows(Vec{1, 2}, Vec{3, 4})
	b := FromRows(Vec{4, 3}, Vec{2, 1})
	if got := a.Add(b); got.At(0, 0) != 5 || got.At(1, 1) != 5 {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got.At(0, 0) != -3 || got.At(1, 1) != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got.At(1, 0) != 6 {
		t.Fatalf("Scale = %v", got)
	}
}

func TestDenseNorms(t *testing.T) {
	a := FromRows(Vec{3, -4}, Vec{0, 0})
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
	if got := a.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := a.FrobNorm(); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("FrobNorm = %v", got)
	}
}

func TestDenseString(t *testing.T) {
	small := FromRows(Vec{1, 2})
	if s := small.String(); !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Fatalf("small String = %q", s)
	}
	big := NewDense(100, 100)
	if s := big.String(); !strings.Contains(s, "100x100") {
		t.Fatalf("big String = %q", s)
	}
}

func TestDenseCloneIndependence(t *testing.T) {
	a := FromRows(Vec{1, 2})
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRawRowAliases(t *testing.T) {
	a := FromRows(Vec{1, 2})
	a.RawRow(0)[1] = 10
	if a.At(0, 1) != 10 {
		t.Fatal("RawRow must alias the matrix")
	}
}

// Property: (AB)^T = B^T A^T for random shapes.
func TestPropertyTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(a8, b8, c8 uint8) bool {
		m, k, n := int(a8%5)+1, int(b8%5)+1, int(c8%5)+1
		a := randDense(rng, m, k)
		b := randDense(rng, k, n)
		left := a.Mul(b).T()
		right := b.T().Mul(a.T())
		return left.EqualApprox(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVecT(x) == T().MulVec(x).
func TestPropertyMulVecTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(a8, b8 uint8) bool {
		m, n := int(a8%6)+1, int(b8%6)+1
		a := randDense(rng, m, n)
		x := make(Vec, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		return a.MulVecT(x).EqualApprox(a.T().MulVec(x), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
