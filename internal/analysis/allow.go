package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow-annotations are the audited escape hatch: a comment of the form
//
//	//plmvet:allow(lockheld) single-flight fast path; see invariant note
//
// suppresses the named analyzers' diagnostics on the comment's own line and
// on the line immediately below it. The annotation names one or more
// analyzers (comma-separated) so a justification for manual lock
// choreography does not also silence, say, a detfloat finding on the same
// line. Everything after the closing parenthesis is free-form justification
// and is ignored by the tooling but required by review convention.

const allowPrefix = "//plmvet:allow("

// allowSite is one annotation: the file it lives in, the line it occupies,
// and the analyzers it names.
type allowSite struct {
	names map[string]bool
}

// allowSet indexes annotations by (filename, line).
type allowSet map[allowKey]allowSite

type allowKey struct {
	file string
	line int
}

// collectAllows gathers every //plmvet:allow annotation in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := allowKey{file: pos.Filename, line: pos.Line}
				site, exists := set[key]
				if !exists {
					site = allowSite{names: make(map[string]bool)}
				}
				for _, n := range names {
					site.names[n] = true
				}
				set[key] = site
			}
		}
	}
	return set
}

// parseAllow extracts the analyzer names from a comment if it is an
// allow-annotation.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return nil, false
	}
	names, _, ok := strings.Cut(rest, ")")
	if !ok {
		return nil, false
	}
	var out []string
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out, len(out) > 0
}

// allowed reports whether d is suppressed: an annotation naming d's analyzer
// sits on the diagnostic's line or the line above it.
func (s allowSet) allowed(fset *token.FileSet, d Diagnostic) bool {
	if len(s) == 0 {
		return false
	}
	pos := fset.Position(d.Pos)
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if site, ok := s[allowKey{file: pos.Filename, line: line}]; ok && site.names[d.Analyzer] {
			return true
		}
	}
	return false
}
