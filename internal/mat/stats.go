package mat

import (
	"math"
	"sort"
)

// Summary holds order statistics of a sample; it backs the error bars the
// paper draws in Figures 6 and 7 (mean marker with min/max whiskers).
type Summary struct {
	N          int
	Mean       float64
	Min, Max   float64
	StdDev     float64
	Median     float64
	Q25, Q75   float64
	Sum        float64
	AbsMaxElem float64
}

// Summarize computes a Summary of xs. NaN entries are dropped; an empty or
// all-NaN input yields a zero Summary with N == 0.
func Summarize(xs []float64) Summary {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	var s Summary
	s.N = len(clean)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	for _, x := range clean {
		s.Sum += x
		if a := math.Abs(x); a > s.AbsMaxElem {
			s.AbsMaxElem = a
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range clean {
		dx := x - s.Mean
		ss += dx * dx
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(sorted, 0.5)
	s.Q25 = Quantile(sorted, 0.25)
	s.Q75 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1) of sorted, using linear
// interpolation between order statistics. sorted must be ascending and
// non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("mat: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin. It panics if
// nbins <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		panic("mat: Histogram needs nbins > 0")
	}
	if hi <= lo {
		panic("mat: Histogram needs hi > lo")
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// MeanVec returns the entrywise mean of the given equal-length vectors.
// It panics on an empty argument list or ragged lengths.
func MeanVec(vs []Vec) Vec {
	if len(vs) == 0 {
		panic("mat: MeanVec of empty set")
	}
	out := make(Vec, len(vs[0]))
	for _, v := range vs {
		if len(v) != len(out) {
			panic("mat: MeanVec ragged input")
		}
		out.AddInPlace(v)
	}
	return out.ScaleInPlace(1 / float64(len(vs)))
}
