package api

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

// echoBatcher answers probes with a deterministic function of the input and
// records how many batch round trips it served — the test double for a
// remote batch endpoint.
type echoBatcher struct {
	mu      sync.Mutex
	trips   int
	sizes   []int
	failAll bool
}

func (e *echoBatcher) answer(x mat.Vec) mat.Vec { return mat.Vec{x[0], 2 * x[0]} }

func (e *echoBatcher) Predict(x mat.Vec) mat.Vec { return e.answer(x) }
func (e *echoBatcher) Dim() int                  { return 1 }
func (e *echoBatcher) Classes() int              { return 2 }

func (e *echoBatcher) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	e.mu.Lock()
	e.trips++
	e.sizes = append(e.sizes, len(xs))
	fail := e.failAll
	e.mu.Unlock()
	if fail {
		return nil, errors.New("echo: injected batch failure")
	}
	out := make([]mat.Vec, len(xs))
	for i, x := range xs {
		out[i] = e.answer(x)
	}
	return out, nil
}

func (e *echoBatcher) roundTrips() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.trips
}

func TestAggregatorFlushBySize(t *testing.T) {
	inner := &echoBatcher{}
	// Window far beyond the test deadline: only the size trigger can fire.
	a := NewAggregator(inner, AggregatorConfig{MaxBatch: 4, Window: time.Minute})
	defer a.Close()

	var wg sync.WaitGroup
	out := make([]mat.Vec, 4)
	start := time.Now()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out[g] = a.Predict(mat.Vec{float64(g)})
		}(g)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("size trigger did not fire, waited %v", elapsed)
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	for g, p := range out {
		if want := (mat.Vec{float64(g), 2 * float64(g)}); !p.EqualApprox(want, 0) {
			t.Fatalf("caller %d got %v, want %v", g, p, want)
		}
	}
	if inner.roundTrips() != 1 {
		t.Fatalf("4 probes at MaxBatch 4 took %d round trips, want 1", inner.roundTrips())
	}
	if a.Flushes() != 1 || a.Probes() != 4 {
		t.Fatalf("stats = %d flushes / %d probes", a.Flushes(), a.Probes())
	}
}

func TestAggregatorFlushByWindow(t *testing.T) {
	inner := &echoBatcher{}
	a := NewAggregator(inner, AggregatorConfig{MaxBatch: 1 << 20, Window: 5 * time.Millisecond})
	defer a.Close()

	start := time.Now()
	p := a.Predict(mat.Vec{3})
	elapsed := time.Since(start)
	if !p.EqualApprox(mat.Vec{3, 6}, 0) {
		t.Fatalf("got %v", p)
	}
	if elapsed < 4*time.Millisecond {
		t.Fatalf("window flush fired after only %v", elapsed)
	}
	if inner.roundTrips() != 1 {
		t.Fatalf("round trips = %d", inner.roundTrips())
	}
}

func TestAggregatorOversizedBatchFlushesImmediately(t *testing.T) {
	inner := &echoBatcher{}
	a := NewAggregator(inner, AggregatorConfig{MaxBatch: 2, Window: time.Minute})
	defer a.Close()
	xs := []mat.Vec{{1}, {2}, {3}, {4}, {5}}
	out, err := a.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if !out[i].EqualApprox(mat.Vec{x[0], 2 * x[0]}, 0) {
			t.Fatalf("item %d got %v", i, out[i])
		}
	}
	if inner.roundTrips() != 1 {
		t.Fatalf("oversized batch split into %d trips", inner.roundTrips())
	}
}

func TestAggregatorConcurrentDemux(t *testing.T) {
	// Many callers with interleaved batches: every caller must get exactly
	// its own answers, in its own submission order, whatever the flush
	// grouping was. Run with -race.
	inner := &echoBatcher{}
	a := NewAggregator(inner, AggregatorConfig{MaxBatch: 32, Window: time.Millisecond})
	defer a.Close()

	const callers, perCaller = 16, 9
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([]mat.Vec, perCaller)
			for i := range xs {
				xs[i] = mat.Vec{float64(g*perCaller + i)}
			}
			out, err := a.PredictBatch(xs)
			if err != nil {
				errs <- err
				return
			}
			for i, x := range xs {
				if want := (mat.Vec{x[0], 2 * x[0]}); !out[i].EqualApprox(want, 0) {
					errs <- fmt.Errorf("caller %d item %d: got %v want %v", g, i, out[i], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if a.Probes() != callers*perCaller {
		t.Fatalf("probes = %d, want %d", a.Probes(), callers*perCaller)
	}
}

func TestAggregatorCoalescesAcrossCallers(t *testing.T) {
	// Deterministic coalescing: four callers of five probes each, with the
	// size trigger at exactly their sum and an unreachable window. The
	// first three callers must block until the fourth tips the flush, so
	// all twenty probes share one round trip.
	inner := &echoBatcher{}
	a := NewAggregator(inner, AggregatorConfig{MaxBatch: 20, Window: time.Minute})
	defer a.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([]mat.Vec, 5)
			for i := range xs {
				xs[i] = mat.Vec{float64(10*g + i)}
			}
			out, err := a.PredictBatch(xs)
			if err != nil {
				errs <- err
				return
			}
			for i, x := range xs {
				if !out[i].EqualApprox(mat.Vec{x[0], 2 * x[0]}, 0) {
					errs <- fmt.Errorf("caller %d item %d: got %v", g, i, out[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if inner.roundTrips() != 1 {
		t.Fatalf("4 callers x 5 probes at MaxBatch 20 took %d round trips, want 1", inner.roundTrips())
	}
}

func TestAggregatorPropagatesBatchErrors(t *testing.T) {
	inner := &echoBatcher{failAll: true}
	a := NewAggregator(inner, AggregatorConfig{MaxBatch: 2, Window: time.Minute})
	defer a.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var batchErr error
	go func() {
		defer wg.Done()
		_, batchErr = a.PredictBatch([]mat.Vec{{1}})
	}()
	p := a.Predict(mat.Vec{2}) // second probe trips the size flush
	wg.Wait()
	if batchErr == nil {
		t.Fatal("PredictBatch swallowed the batch failure")
	}
	// The Model-interface path degrades to uniform and records stickily.
	if !p.EqualApprox(mat.Vec{0.5, 0.5}, 0) {
		t.Fatalf("failed Predict returned %v, want uniform", p)
	}
	if a.Err() == nil {
		t.Fatal("sticky error not recorded")
	}
	a.ResetErr()
	if a.Err() != nil {
		t.Fatal("ResetErr failed")
	}
}

func TestAggregatorCloseFlushesAndPassesThrough(t *testing.T) {
	inner := &echoBatcher{}
	a := NewAggregator(inner, AggregatorConfig{MaxBatch: 1 << 20, Window: time.Minute})

	done := make(chan mat.Vec, 1)
	go func() { done <- a.Predict(mat.Vec{7}) }()
	// Wait for the probe to be pending, then close: the probe must be
	// answered by the closing flush, not abandoned.
	for {
		if a.mu.Lock(); a.count > 0 {
			a.mu.Unlock()
			break
		}
		a.mu.Unlock()
		time.Sleep(100 * time.Microsecond)
	}
	a.Close()
	select {
	case p := <-done:
		if !p.EqualApprox(mat.Vec{7, 14}, 0) {
			t.Fatalf("pending probe got %v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close abandoned a pending probe")
	}
	// After Close the aggregator is a transparent pass-through.
	if p := a.Predict(mat.Vec{9}); !p.EqualApprox(mat.Vec{9, 18}, 0) {
		t.Fatalf("post-Close Predict got %v", p)
	}
	a.Close() // idempotent
}

func TestAggregatorFallsBackWithoutBatchEndpoint(t *testing.T) {
	// A model with no PredictBatch still works: the flush degrades to
	// per-probe forwarding.
	m := testModel(60)
	a := NewAggregator(plainModel{m}, AggregatorConfig{MaxBatch: 2, Window: time.Minute})
	defer a.Close()
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	out, err := a.PredictBatch([]mat.Vec{x, x})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].EqualApprox(m.Predict(x), 0) || !out[1].EqualApprox(m.Predict(x), 0) {
		t.Fatal("fallback answers differ from the model")
	}
}

// plainModel hides a model's batch endpoint.
type plainModel struct{ inner plm.Model }

func (p plainModel) Predict(x mat.Vec) mat.Vec { return p.inner.Predict(x) }
func (p plainModel) Dim() int                  { return p.inner.Dim() }
func (p plainModel) Classes() int              { return p.inner.Classes() }

func TestAggregatorPassThroughWithoutBatchEndpointCountsNoFlush(t *testing.T) {
	// Regression: after Close, probes against a batchless model go out
	// individually, yet each pass-through call still counted one flush —
	// overstating how well the run batched.
	a := NewAggregator(plainModel{testModel(61)}, AggregatorConfig{MaxBatch: 4, Window: time.Minute})
	a.Close()
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	a.Predict(x)
	if _, err := a.PredictBatch([]mat.Vec{x, x}); err != nil {
		t.Fatal(err)
	}
	if a.Flushes() != 0 {
		t.Fatalf("batchless pass-through counted %d flushes, want 0", a.Flushes())
	}
	if a.Probes() != 3 {
		t.Fatalf("probes = %d, want 3", a.Probes())
	}
	// A batch-capable inner model still counts its pass-through round trip.
	b := NewAggregator(&echoBatcher{}, AggregatorConfig{})
	b.Close()
	b.Predict(mat.Vec{1})
	if b.Flushes() != 1 {
		t.Fatalf("batched pass-through counted %d flushes, want 1", b.Flushes())
	}
}

func TestAggregatorAdaptiveWindowShrinksOnFastModel(t *testing.T) {
	// Against an in-process model the observed RTT is microseconds, so the
	// adaptive window must collapse to MinWindow — near-instant flushes
	// instead of a fixed multi-millisecond wait.
	cfg := AggregatorConfig{
		Adaptive:  true,
		Window:    10 * time.Millisecond, // deliberately awful seed window
		MinWindow: 100 * time.Microsecond,
	}
	a := NewAggregator(&echoBatcher{}, cfg)
	defer a.Close()
	if a.CurrentWindow() != 10*time.Millisecond {
		t.Fatalf("seed window = %v", a.CurrentWindow())
	}
	for i := 0; i < 8; i++ {
		a.Predict(mat.Vec{float64(i)})
	}
	if got := a.CurrentWindow(); got != cfg.MinWindow {
		t.Fatalf("window after fast flushes = %v, want MinWindow %v", got, cfg.MinWindow)
	}
	if a.RTT() <= 0 {
		t.Fatal("no RTT estimate recorded")
	}
}

// slowBatcher delays every batch — an injected-latency remote stand-in.
type slowBatcher struct {
	echoBatcher
	latency time.Duration
}

func (s *slowBatcher) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	time.Sleep(s.latency)
	return s.echoBatcher.PredictBatch(xs)
}

func TestAggregatorAdaptiveWindowTracksSlowModel(t *testing.T) {
	// With ~10ms round trips the window must converge to roughly
	// WindowFraction * RTT: far above the 2ms fixed default, still below
	// MaxWindow. Bounds are generous for slow CI machines.
	const latency = 10 * time.Millisecond
	a := NewAggregator(&slowBatcher{latency: latency}, AggregatorConfig{Adaptive: true})
	defer a.Close()
	for i := 0; i < 6; i++ {
		a.Predict(mat.Vec{float64(i)})
	}
	rtt, window := a.RTT(), a.CurrentWindow()
	if rtt < latency {
		t.Fatalf("RTT estimate %v below injected latency %v", rtt, latency)
	}
	if window < latency/4 {
		t.Fatalf("window %v did not grow toward the %v RTT", window, rtt)
	}
	if window > 20*time.Millisecond {
		t.Fatalf("window %v exceeds MaxWindow", window)
	}
}
