package mat

import (
	"math/rand"
	"testing"
)

// applyEpilogueNaive is the unfused reference: whole-matrix bias sweep, then
// whole-matrix mask capture, then whole-matrix activation — the separate
// passes the nn package ran before fusion. Every operation is per-element,
// so sweeping the whole matrix per pass instead of per block must give the
// fused path's bits exactly.
func applyEpilogueNaive(dst *Dense, epi *Epilogue) {
	if epi == nil {
		return
	}
	if epi.Bias != nil {
		for i := 0; i < dst.Rows(); i++ {
			dst.RawRow(i).AddInPlace(epi.Bias)
		}
	}
	if epi.Mask != nil {
		for i := 0; i < dst.Rows(); i++ {
			for j, v := range dst.RawRow(i) {
				epi.Mask[i*dst.Cols()+j] = v > 0
			}
		}
	}
	leak := epi.Leak
	if epi.Act == ActReLU {
		leak = 0
	}
	if epi.Act != ActIdentity {
		for i := 0; i < dst.Rows(); i++ {
			row := dst.RawRow(i)
			for j, v := range row {
				if v <= 0 {
					row[j] = leak * v
				}
			}
		}
	}
}

// epilogueVariants returns the epilogue configurations the fuzz sweeps: the
// shapes nn actually uses (bias-only read-out, masked ReLU / leaky hidden
// layers) plus a bias-less activation to decouple the two features.
func epilogueVariants(rows, cols int, rng *rand.Rand) []*Epilogue {
	bias := make(Vec, cols)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	return []*Epilogue{
		nil,
		{Bias: bias},
		{Bias: bias, Act: ActReLU, Mask: make([]bool, rows*cols)},
		{Bias: bias, Act: ActLeakyReLU, Leak: 0.01, Mask: make([]bool, rows*cols)},
		{Act: ActLeakyReLU, Leak: 0.25},
	}
}

// TestMulBTIntoEpilogueShapeFuzzAllTiers is the fused parity battery: every
// (m, n, k) in [0, 17]³ — covering each kernel's 8-row, 4-row, 4-col and
// scalar remainder combinations plus empty dimensions — times each epilogue
// variant, on every tier the CPU can run, compared bit-for-bit
// (Float64bits-equal via bitEqual) against naive GEMM plus the unfused
// reference sweeps.
func TestMulBTIntoEpilogueShapeFuzzAllTiers(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier KernelTier) {
		rng := rand.New(rand.NewSource(31))
		for m := 0; m <= 17; m++ {
			for n := 0; n <= 17; n++ {
				for k := 0; k <= 17; k++ {
					a := randDense(rng, m, k)
					b := randDense(rng, n, k)
					want := naiveMul(a, b.T())
					for vi, epi := range epilogueVariants(m, n, rng) {
						wantCopy := want.Clone()
						var wantMask []bool
						refEpi := epi
						if epi != nil {
							cp := *epi
							if epi.Mask != nil {
								wantMask = make([]bool, len(epi.Mask))
								cp.Mask = wantMask
							}
							refEpi = &cp
						}
						applyEpilogueNaive(wantCopy, refEpi)

						dst := NewDense(m, n)
						a.MulBTIntoEpilogue(b, dst, epi)
						if t.Failed() {
							return
						}
						bitEqual(t, dst, wantCopy, "fused epilogue")
						if wantMask != nil {
							for i := range wantMask {
								if epi.Mask[i] != wantMask[i] {
									t.Fatalf("tier %s shape (%d,%d,%d) variant %d: mask[%d] = %v, want %v",
										tier, m, n, k, vi, i, epi.Mask[i], wantMask[i])
								}
							}
						}
					}
				}
			}
		}
	})
}

// TestMulBTIntoEpilogueParallelMatchesSerial pins that row-parallel
// execution applies the epilogue to exactly its own row span: a shape above
// the parallel flop cutoff produces the same bits and the same mask at one
// worker and at four.
func TestMulBTIntoEpilogueParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randDense(rng, 70, 64)
	b := randDense(rng, 70, 64)
	bias := make(Vec, 70)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	run := func(workers int) (*Dense, []bool) {
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		epi := &Epilogue{Bias: bias, Act: ActLeakyReLU, Leak: 0.01, Mask: make([]bool, 70*70)}
		dst := NewDense(70, 70)
		a.MulBTIntoEpilogue(b, dst, epi)
		return dst, epi.Mask
	}
	serial, serialMask := run(1)
	par, parMask := run(4)
	bitEqual(t, par, serial, "epilogue workers=4 vs workers=1")
	for i := range serialMask {
		if parMask[i] != serialMask[i] {
			t.Fatalf("mask[%d] differs between worker counts", i)
		}
	}
}

// TestMulBTIntoEpilogueNilMatchesMulBTInto pins that a nil epilogue is
// exactly the plain entry point.
func TestMulBTIntoEpilogueNilMatchesMulBTInto(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randDense(rng, 9, 13)
	b := randDense(rng, 7, 13)
	want := NewDense(9, 7)
	a.MulBTInto(b, want)
	got := NewDense(9, 7)
	a.MulBTIntoEpilogue(b, got, nil)
	bitEqual(t, got, want, "nil epilogue")
}

// TestMulBTIntoEpilogueSteadyStateAllocFree asserts the fused fast path
// allocates nothing once scratch pools are warm: the property the batched
// training loop's alloc budget rests on.
func TestMulBTIntoEpilogueSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	rng := rand.New(rand.NewSource(34))
	a := randDense(rng, 12, 9)
	b := randDense(rng, 11, 9)
	dst := NewDense(12, 11)
	epi := &Epilogue{Bias: make(Vec, 11), Act: ActLeakyReLU, Leak: 0.01, Mask: make([]bool, 12*11)}
	a.MulBTIntoEpilogue(b, dst, epi) // warm the scratch pool
	if avg := testing.AllocsPerRun(200, func() {
		a.MulBTIntoEpilogue(b, dst, epi)
	}); avg != 0 {
		t.Fatalf("fused MulBTIntoEpilogue allocates %.1f/op in steady state, want 0", avg)
	}
}

func TestEpilogueCheckPanics(t *testing.T) {
	a := NewDense(4, 3)
	b := NewDense(5, 3)
	dst := NewDense(4, 5)
	for _, tc := range []struct {
		name string
		epi  *Epilogue
	}{
		{"bias length", &Epilogue{Bias: make(Vec, 4)}},
		{"mask length", &Epilogue{Mask: make([]bool, 19)}},
		{"unknown activation", &Epilogue{Act: ActKind(9)}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			a.MulBTIntoEpilogue(b, dst, tc.epi)
		}()
	}
}

// TestEpilogueMaskCapturesPostBiasPreActivation pins the capture point: the
// mask must see the biased pre-activation (openbox's region key), not the
// raw GEMM output and not the post-activation value.
func TestEpilogueMaskCapturesPostBiasPreActivation(t *testing.T) {
	a := NewDenseFrom(1, 1, []float64{1})
	b := NewDenseFrom(2, 1, []float64{-1, 2}) // raw products: -1, 2
	epi := &Epilogue{Bias: Vec{3, -5}, Act: ActReLU, Mask: make([]bool, 2)}
	dst := NewDense(1, 2)
	a.MulBTIntoEpilogue(b, dst, epi)
	// Biased: -1+3 = 2 > 0 (raw was negative); 2-5 = -3 <= 0 (raw positive).
	if !epi.Mask[0] || epi.Mask[1] {
		t.Fatalf("mask = %v, want [true false]", epi.Mask)
	}
	if dst.At(0, 0) != 2 || dst.At(0, 1) != 0 {
		t.Fatalf("dst = [%v %v], want [2 0]", dst.At(0, 0), dst.At(0, 1))
	}
}
