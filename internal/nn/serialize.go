package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/mat"
)

// networkJSON is the on-disk representation of a Network.
type networkJSON struct {
	Format string      `json:"format"`
	Leak   float64     `json:"leak,omitempty"`
	Layers []layerJSON `json:"layers"`
}

type layerJSON struct {
	Rows int         `json:"rows"`
	Cols int         `json:"cols"`
	W    [][]float64 `json:"w"`
	B    []float64   `json:"b"`
}

const formatTag = "openapi-plnn-v1"

// MarshalJSON encodes the network's architecture and parameters.
func (n *Network) MarshalJSON() ([]byte, error) {
	out := networkJSON{Format: formatTag, Leak: n.leak, Layers: make([]layerJSON, len(n.layers))}
	for i, l := range n.layers {
		lj := layerJSON{Rows: l.W.Rows(), Cols: l.W.Cols(), B: l.B.Clone()}
		lj.W = make([][]float64, lj.Rows)
		for r := 0; r < lj.Rows; r++ {
			lj.W[r] = l.W.Row(r)
		}
		out.Layers[i] = lj
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a network written by MarshalJSON, validating shapes.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in networkJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	if in.Format != formatTag {
		return fmt.Errorf("nn: unknown format %q (want %q)", in.Format, formatTag)
	}
	if len(in.Layers) == 0 {
		return fmt.Errorf("nn: no layers in serialized network")
	}
	layers := make([]Layer, len(in.Layers))
	for i, lj := range in.Layers {
		if lj.Rows <= 0 || lj.Cols <= 0 {
			return fmt.Errorf("nn: layer %d has invalid shape %dx%d", i, lj.Rows, lj.Cols)
		}
		if len(lj.W) != lj.Rows || len(lj.B) != lj.Rows {
			return fmt.Errorf("nn: layer %d row/bias count mismatch", i)
		}
		if i > 0 && lj.Cols != in.Layers[i-1].Rows {
			return fmt.Errorf("nn: layer %d input %d != previous output %d", i, lj.Cols, in.Layers[i-1].Rows)
		}
		flat := make([]float64, 0, lj.Rows*lj.Cols)
		for r, row := range lj.W {
			if len(row) != lj.Cols {
				return fmt.Errorf("nn: layer %d row %d has %d cols, want %d", i, r, len(row), lj.Cols)
			}
			flat = append(flat, row...)
		}
		layers[i] = Layer{
			W: mat.NewDenseFrom(lj.Rows, lj.Cols, flat),
			B: append([]float64(nil), lj.B...),
		}
	}
	n.layers = layers
	n.leak = 0
	if in.Leak > 0 && in.Leak < 1 {
		n.leak = in.Leak
	}
	return nil
}

// Save writes the network to path as JSON.
func (n *Network) Save(path string) error {
	data, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("nn: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("nn: save %s: %w", path, err)
	}
	return nil
}

// Load reads a network saved by Save.
func Load(path string) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	var n Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, err
	}
	return &n, nil
}

// WriteTo streams the JSON encoding of the network to w.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	data, err := json.Marshal(n)
	if err != nil {
		return 0, err
	}
	nw, err := w.Write(data)
	return int64(nw), err
}

// Read decodes a network from r.
func Read(r io.Reader) (*Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("nn: read: %w", err)
	}
	var n Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, err
	}
	return &n, nil
}
