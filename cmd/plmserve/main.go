// Command plmserve loads a model saved by plmtrain and exposes it as an
// HTTP prediction API — the "cloud service" the paper interprets. Only
// probabilities leave the process; parameters stay hidden.
//
// With -replicas N the model is loaded N times and served behind the
// api.Shard router: each /batch request fans out across the replicas in
// parallel and /stats reports the per-replica query breakdown.
//
// With -cache N a bounded LRU response cache sits in front of the model (or
// the whole shard): repeated probes are answered without touching any
// replica, and /stats reports cache_hits / cache_misses / cache_evictions.
//
// Usage:
//
//	plmserve -model plnn.json -type plnn -addr :8080
//	plmserve -model plnn.json -type plnn -replicas 4 -cache 4096
//	plmserve -model lmt.json -type lmt -addr 127.0.0.1:9000 -latency 5ms
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/modelio"
	"repro/internal/plm"
)

// loadReplicas loads the model file n times — each replica owns its own
// parameters — and wraps them in the shard router when n > 1, so a single
// big coalesced batch from an aggregated client is evaluated across all
// replicas in parallel instead of serially on one.
func loadReplicas(path, kind string, n int) (plm.Model, error) {
	if n <= 1 {
		return modelio.Load(path, kind)
	}
	models := make([]plm.Model, n)
	for i := range models {
		m, err := modelio.Load(path, kind)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return api.NewShard(models)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("plmserve: ")

	var (
		modelPath = flag.String("model", "", "model file saved by plmtrain (required)")
		modelType = flag.String("type", "plnn", fmt.Sprintf("model family: one of %v", modelio.Kinds()))
		addr      = flag.String("addr", ":8080", "listen address")
		name      = flag.String("name", "", "advertised model name (default: file path)")
		replicas  = flag.Int("replicas", 1, "model replicas served behind the shard router")
		cacheN    = flag.Int("cache", 0, "LRU response cache entries in front of the model (0: off)")
		latency   = flag.Duration("latency", 0, "artificial per-request latency")
		logStats  = flag.Duration("log-stats", 0, "periodically log served queries and round trips (0: off)")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	if *name == "" {
		*name = *modelPath
	}
	if *replicas < 1 {
		log.Fatalf("-replicas %d: need at least 1", *replicas)
	}

	model, err := loadReplicas(*modelPath, *modelType, *replicas)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheN > 0 {
		// The cache fronts the whole shard: a repeated probe is answered
		// before any replica sees it, and /stats reports hits and misses.
		cached, err := api.NewResponseCache(model, *cacheN)
		if err != nil {
			log.Fatal(err)
		}
		model = cached
	} else if *cacheN < 0 {
		log.Fatalf("-cache %d: need >= 0", *cacheN)
	}

	srv := api.NewServer(model, *name)
	srv.Latency = *latency
	fmt.Printf("serving %s (%d features, %d classes, %d replica(s)) on %s\n",
		*name, model.Dim(), model.Classes(), *replicas, *addr)
	fmt.Println("endpoints: GET /meta, POST /predict, POST /batch, GET /stats")

	if *logStats > 0 {
		// The queries/round-trips ratio shows how well clients batch: an
		// aggregated interpreter pool drives it far above 1.
		go func() {
			for range time.Tick(*logStats) {
				q, rt := srv.Queries(), srv.Requests()
				ratio := float64(q)
				if rt > 0 {
					ratio = float64(q) / float64(rt)
				}
				log.Printf("served %d queries over %d round trips (%.1f queries/trip)", q, rt, ratio)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
