// Regions: visualize the locally linear region structure the whole paper is
// built on. A 2-d ReLU network's input plane is scanned on a grid; every
// cell prints the character of its region, making the polytopes visible.
// OpenAPI then interprets one instance per region and shows that the
// recovered decision features change *only* when the region changes — the
// consistency half of the paper's title.
//
// Run with:
//
//	go run ./examples/regions
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func main() {
	log.SetFlags(0)

	rng := rand.New(rand.NewSource(5))
	// A small 2-d network keeps the region map readable.
	net := nn.New(rng, 2, 6, 4, 3)
	model := &openbox.PLNN{Net: net}

	const (
		lo, hi = -2.0, 2.0
		cols   = 64
		rows   = 28
	)
	glyphs := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	seen := map[string]byte{}
	repr := map[string]repro.Vec{}

	fmt.Printf("locally linear regions of a ReLU net over [%g,%g]^2 (one letter per region):\n\n", lo, hi)
	for r := 0; r < rows; r++ {
		y := hi - (hi-lo)*float64(r)/float64(rows-1)
		line := make([]byte, cols)
		for cIdx := 0; cIdx < cols; cIdx++ {
			x := lo + (hi-lo)*float64(cIdx)/float64(cols-1)
			p := repro.Vec{x, y}
			key := model.RegionKey(p)
			g, ok := seen[key]
			if !ok {
				if len(seen) < len(glyphs) {
					g = glyphs[len(seen)]
				} else {
					g = '#'
				}
				seen[key] = g
				repr[key] = p.Clone()
			}
			line[cIdx] = g
		}
		fmt.Println(string(line))
	}
	fmt.Printf("\n%d distinct regions visible on this grid\n", len(seen))

	// Census: how large are the regions around random probes?
	census, err := eval.RegionCensus(model, []mat.Vec{{0, 0}}, 120, 16, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("census over 120 probes: %d regions, same-region cube edge median %.3g (min %.3g)\n",
		census.DistinctRegions, census.MedianEdge, census.MinEdge)

	// Interpret one representative per region; regions are exactly the
	// level sets of the interpretation.
	fmt.Println("\nOpenAPI decision features per region (class 0), one representative each:")
	o := core.New(core.Config{Seed: 6})
	shown := 0
	for key, p := range repr {
		if shown >= 6 {
			break
		}
		interp, err := o.Interpret(model, p, 0)
		if err != nil {
			continue
		}
		truth, err := model.LocalAt(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  region %c at (%+.2f,%+.2f): D_0 = [%+.3f %+.3f]  (exact: L1 gap %.1e)\n",
			seen[key], p[0], p[1], interp.Features[0], interp.Features[1],
			interp.Features.L1Dist(truth.DecisionFeatures(0)))
		shown++
	}
	fmt.Println("\nwithin one region every instance gets these same weights — the")
	fmt.Println("consistency guarantee; across regions they change with the polytope.")
}
