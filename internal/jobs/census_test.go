package jobs

import (
	"bytes"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/wire"
)

// censusWhite builds a cached white box whose region store the census
// sweeps populate — the store a plmserve -atlas deployment would back with
// the disk log.
func censusWhite(seed int64) *openbox.PLNN {
	net := nn.New(rand.New(rand.NewSource(seed)), 6, 10, 3)
	return openbox.NewCachedPLNNOpts(net, openbox.StoreOptions{Capacity: 1024})
}

func TestCensusJobPopulatesRegionStore(t *testing.T) {
	white := censusWhite(31)
	r, err := NewRunner(white, white, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	anchors := jobProbes(rand.New(rand.NewSource(32)), 3, white.Dim())
	id, err := r.SubmitN(OpCensus, anchors, 40)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, r, id)
	if v.Status != StatusDone {
		t.Fatalf("census ended %s (%s)", v.Status, v.Error)
	}
	if v.Census == nil {
		t.Fatal("done census view carries no report")
	}
	if v.Census.Probes != 40 {
		t.Fatalf("census swept %d probes, want 40", v.Census.Probes)
	}
	if v.Census.DistinctRegions < 1 || v.Census.DistinctRegions > 40 {
		t.Fatalf("census found %d distinct regions from 40 probes", v.Census.DistinctRegions)
	}
	// The job's real output is the populated store.
	if st := white.RegionStoreStats(); st.Size != v.Census.DistinctRegions {
		t.Fatalf("store holds %d regions, census reported %d", st.Size, v.Census.DistinctRegions)
	}
	if done, total := r.CensusProgress(); done != 40 || total != 40 {
		t.Fatalf("census progress %d/%d, want 40/40", done, total)
	}
}

func TestCensusJobDefaultBudgetAndValidation(t *testing.T) {
	white := censusWhite(33)
	r, err := NewRunner(white, white, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	anchors := jobProbes(rand.New(rand.NewSource(34)), 2, white.Dim())
	// Submit (no explicit budget) defaults to 64 probes per anchor.
	id, err := r.Submit(OpCensus, anchors)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, r, id)
	if v.Status != StatusDone {
		t.Fatalf("census ended %s (%s)", v.Status, v.Error)
	}
	if v.Census == nil || v.Census.Probes != 64*len(anchors) {
		t.Fatalf("default-budget census = %+v, want %d probes", v.Census, 64*len(anchors))
	}

	// Census needs the white-box side, like interpret.
	black := jobModel(35)
	r2, err := NewRunner(black, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Submit(OpCensus, anchors); err == nil {
		t.Fatal("census accepted without a white-box replica")
	}
}

func TestCensusJobHTTPSubmit(t *testing.T) {
	white := censusWhite(36)
	r, _, c := streamServer(t, white, white, 0)
	anchors := jobProbes(rand.New(rand.NewSource(37)), 2, white.Dim())

	// The dialed client negotiated the binary codec, so SubmitCensus ships
	// the probe budget in the X-PLM-Job-Probes header.
	if c.CodecName() != wire.NameBinary {
		t.Fatalf("client negotiated %s, want binary", c.CodecName())
	}
	ack, err := SubmitCensus(c, anchors, 24)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Op != OpCensus {
		t.Fatalf("ack op = %s", ack.Op)
	}
	v := waitDone(t, r, ack.ID)
	if v.Status != StatusDone || v.Census == nil || v.Census.Probes != 24 {
		t.Fatalf("binary census ended %s census=%+v, want 24 probes", v.Status, v.Census)
	}
	// The poll view carries the report over the wire too.
	polled, err := Poll(c, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if polled.Census == nil || polled.Census.Probes != 24 {
		t.Fatalf("polled census = %+v", polled.Census)
	}

	// JSON submit carries the budget in the body.
	body := []byte(`{"op":"census","xs":[[0,0,0,0,0,0]],"n":16}`)
	resp, err := c.HTTPClient().Post(c.BaseURL()+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jsonAck View
	if err := wire.DecodeJSON(resp.Body, wire.DefaultMaxBody, &jsonAck, false); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("JSON census submit answered %s", resp.Status)
	}
	if v := waitDone(t, r, jsonAck.ID); v.Census == nil || v.Census.Probes != 16 {
		t.Fatalf("JSON census = %+v, want 16 probes", v.Census)
	}

	// A garbage probe-budget header is a 400, not a silent default.
	var buf bytes.Buffer
	rows := [][]float64{anchors[0]}
	if err := c.Codec().EncodeMat(&buf, "xs", rows); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL()+"/v1/jobs", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", c.Codec().ContentType())
	req.Header.Set(OpHeader, OpCensus)
	req.Header.Set(NHeader, "bogus")
	badResp, err := c.HTTPClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus %s answered %s, want 400", NHeader, badResp.Status)
	}
}
