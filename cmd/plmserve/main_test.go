package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/mat"
	"repro/internal/modelio"
	"repro/internal/nn"
)

// TestLoadReplicasServesShardedStats exercises exactly what `plmserve
// -replicas 4` wires together: N loaded copies behind the shard router,
// served over HTTP, with bit-identical predictions to a single replica and
// a per-replica breakdown under /stats.
func TestLoadReplicasServesShardedStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.New(rng, 6, 8, 3)
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}

	single, err := loadReplicas(path, "plnn", 1, api.ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := loadReplicas(path, "plnn", 4, api.ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sharded.(*api.Shard); !ok {
		t.Fatalf("replicas=4 returned %T, want *api.Shard", sharded)
	}

	ts := httptest.NewServer(api.NewServer(sharded, "sharded"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]mat.Vec, 12)
	for i := range xs {
		xs[i] = make(mat.Vec, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	got, err := client.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: sharded %v != single-replica %v", i, got[i], want)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries        int64   `json:"queries"`
		ReplicaQueries []int64 `json:"replica_queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.ReplicaQueries) != 4 {
		t.Fatalf("replica_queries = %v, want 4 entries", stats.ReplicaQueries)
	}
	var sum int64
	for r, q := range stats.ReplicaQueries {
		if q == 0 {
			t.Fatalf("replica %d served no probes: %v", r, stats.ReplicaQueries)
		}
		sum += q
	}
	if sum != stats.Queries {
		t.Fatalf("replica queries sum to %d, server counted %d", sum, stats.Queries)
	}
}

func TestLoadReplicasBadInputs(t *testing.T) {
	if _, err := loadReplicas(filepath.Join(t.TempDir(), "missing.json"), "plnn", 2, api.ShardConfig{}); err == nil {
		t.Fatal("missing model file accepted")
	}
	rng := rand.New(rand.NewSource(2))
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := nn.New(rng, 4, 6, 2).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReplicas(path, "nope", 1, api.ShardConfig{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestCachedShardedServer exercises what `plmserve -replicas 2 -cache 64`
// wires together: the LRU response cache in front of the shard, repeat
// probes answered without growing the query count, and the cache counters
// visible under /stats alongside the replica breakdown.
func TestCachedShardedServer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := nn.New(rng, 5, 7, 3)
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	model, err := loadReplicas(path, "plnn", 2, api.ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := api.NewResponseCache(model, 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.NewServer(cached, "cached"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make(mat.Vec, 5)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	first := client.Predict(x)
	second := client.Predict(x)
	if err := client.Err(); err != nil {
		t.Fatal(err)
	}
	if !first.EqualApprox(second, 0) {
		t.Fatalf("cached answer %v != first answer %v", second, first)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		CacheHits      *int64  `json:"cache_hits"`
		CacheMisses    *int64  `json:"cache_misses"`
		ReplicaQueries []int64 `json:"replica_queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits == nil || *stats.CacheHits != 1 || stats.CacheMisses == nil || *stats.CacheMisses != 1 {
		t.Fatalf("cache stats hits=%v misses=%v, want 1/1", stats.CacheHits, stats.CacheMisses)
	}
	if len(stats.ReplicaQueries) != 2 {
		t.Fatalf("replica_queries = %v, want the shard visible behind the cache", stats.ReplicaQueries)
	}
}

// TestBuildBackendsHeterogeneous exercises what `plmserve -replicas 2
// -backend host:port,host:port` wires together: 2 local replicas + 2
// remote plmserve instances behind one shard, bit-identical answers, a
// per-backend /stats breakdown with both kinds, and failover keeping the
// endpoint serving after a remote dies.
func TestBuildBackendsHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := nn.New(rng, 6, 10, 3)
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	single, err := modelio.Load(path, "plnn")
	if err != nil {
		t.Fatal(err)
	}

	// Two inner plmserve stand-ins, each serving the same model file.
	var remotes []*httptest.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		m, err := modelio.Load(path, "plnn")
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(api.NewServer(m, "inner"))
		defer ts.Close()
		remotes = append(remotes, ts)
		addrs = append(addrs, ts.URL)
	}

	backends, err := buildBackends(path, "plnn", 2, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(backends) != 4 {
		t.Fatalf("built %d backends, want 4", len(backends))
	}
	shard, err := api.NewShardBackends(backends, api.ShardConfig{QuarantineBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.NewServer(shard, "hetero"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	xs := make([]mat.Vec, 32)
	for i := range xs {
		xs[i] = make(mat.Vec, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	check := func(round string) {
		t.Helper()
		got, err := client.PredictBatch(xs)
		if err != nil {
			t.Fatalf("%s: %v", round, err)
		}
		for i, x := range xs {
			if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
				t.Fatalf("%s item %d: %v != %v", round, i, got[i], want)
			}
		}
	}
	check("all alive")

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Backends []api.BackendStatus `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	kinds := map[string]int{}
	for _, b := range stats.Backends {
		kinds[b.Kind]++
		if b.Queries == 0 {
			t.Fatalf("backend %s (%s) served nothing: %+v", b.Name, b.Kind, stats.Backends)
		}
	}
	if kinds["local"] != 2 || kinds["remote"] != 2 {
		t.Fatalf("kinds = %v, want 2 local + 2 remote", kinds)
	}

	// One remote dies; the endpoint keeps answering bit-identically.
	remotes[1].Close()
	check("one remote dead")
	check("one remote dead, second batch")
}

func TestBuildBackendsRejectsBadAddress(t *testing.T) {
	if _, err := buildBackends("", "plnn", 0, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("undialable backend accepted")
	}
}
