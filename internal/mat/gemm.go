package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// This file holds the blocked GEMM kernels behind Mul, MulInto, MulBT,
// MulBTInto(Epilogue), MulAT and MulVecInto. The naive triple loop evaluates
// every output element as one serial dot product, so throughput is bound by
// the floating-point add latency of the single accumulator chain. The
// kernels below tile the output into register blocks: many accumulators
// advance through the shared k dimension together, hiding the add latency
// behind independent chains and loading every A and B row once per tile
// instead of once per element.
//
// Crucially, each output element still owns exactly one accumulator that
// sums its products in ascending-k order — the same order MulVec and the
// naive loop use — so the blocked results are bit-identical to the scalar
// path. The blocking changes which elements make progress concurrently,
// never the order of operations within one element.
//
// Kernel tiers (see gemm_tier.go; DESIGN.md §14 has the full table): the
// dispatch ladder is selected by ActiveKernelTier, highest supported tier
// first, with lower tiers handling the remainders.
//
//	TierAVX512  amd64  dotPack8x4: 8 packed A rows × 4 B rows per call,
//	                   one ZMM lane per A row (gemm_amd64.s)
//	TierAVX2    amd64  dotPack4x4: 4 packed A rows × 4 B rows per call,
//	                   one YMM lane per A row (gemm_amd64.s)
//	TierNEON    arm64  dotPack4x4: 4 packed A rows × 4 B rows per call,
//	                   two 2-lane vectors per A-row quad (gemm_arm64.s)
//	TierScalar  all    pure-Go 4x2 register tiles plus a 1-row×4-col tail
//
// Every assembly kernel is mul-then-add on purpose — no FMA, which rounds
// once where the scalar path rounds twice — and the pure-Go fallbacks keep
// the same shape (enforced by the kernelpurity analyzer, DESIGN.md §11).
//
// Dispatch coverage notes: MulBTInto, MulInto, MulATInto and MulVecInto all
// route through gemmBT and therefore through the packed microkernels.
// MulInto packs B transposed; MulATInto packs both operands transposed (so
// batched gradient GEMMs run on the same packed kernels as forwards);
// MulVecInto runs as a 1-row tile whose 4-wide column tail carries four
// independent accumulator chains. Only MulVec/MulVecT, the allocating
// convenience forms, stay on plain scalar loops.

// gemmWorkers caps the goroutines a single large multiply may fan out to.
// It defaults to GOMAXPROCS; SetWorkers(1) forces serial execution. Every
// partition is a contiguous block of output rows, each written by exactly
// one goroutine, so the result is bit-identical for any worker count.
var gemmWorkers = struct {
	sync.Mutex
	n int
}{n: 0} // 0 = resolve GOMAXPROCS at call time

// SetWorkers sets the maximum number of goroutines one matrix multiply may
// use (n <= 0 restores the default, GOMAXPROCS). It returns the previous
// setting. Results are identical for every worker count.
func SetWorkers(n int) int {
	gemmWorkers.Lock()
	defer gemmWorkers.Unlock()
	prev := gemmWorkers.n
	gemmWorkers.n = n
	return prev
}

func workers() int {
	gemmWorkers.Lock()
	n := gemmWorkers.n
	gemmWorkers.Unlock()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// parallelFlopCutoff is the approximate multiply-add count below which
// spawning goroutines costs more than it buys.
const parallelFlopCutoff = 1 << 18

// scratch pools the packed-row buffers gemmBT needs, so composition chains
// that multiply in a loop stop hammering the allocator.
var scratchPool = sync.Pool{New: func() any { s := make([]float64, 0); return &s }}

func getScratch(n int) *[]float64 {
	s := scratchPool.Get().(*[]float64)
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return s
}

func putScratch(s *[]float64) { scratchPool.Put(s) }

// denseScratchPool pools transposed-operand headers together with their
// backing storage. The headers must be pooled too: the transposed operand
// is captured by the parallelRows closure, so a stack-local Dense would
// escape and heap-allocate on every call — visible as per-batch garbage in
// the training loop.
var denseScratchPool = sync.Pool{New: func() any { return new(Dense) }}

func getScratchDense(r, c int) *Dense {
	d := denseScratchPool.Get().(*Dense)
	n := r * c
	if cap(d.data) < n {
		d.data = make([]float64, n)
	}
	d.data = d.data[:n]
	d.rows, d.cols = r, c
	return d
}

func putScratchDense(d *Dense) { denseScratchPool.Put(d) }

// MulVecInto computes dst = m * x without allocating; dst must have length
// m.Rows() and must not alias x or m. It returns dst. Results are
// bit-identical to MulVec. The product runs as a 1-row tile through the
// shared gemmBT kernel — dst viewed 1×rows equals x viewed 1×k times mᵀ —
// so single-instance predictions get the same 4-chain column tail the
// batched path uses instead of one serial dot product per output.
func (m *Dense) MulVecInto(x, dst Vec) Vec {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVecInto length %d != cols %d", len(x), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecInto dst length %d != rows %d", len(dst), m.rows))
	}
	a := Dense{rows: 1, cols: m.cols, data: x}
	d := Dense{rows: 1, cols: m.rows, data: dst}
	gemmBT(&d, &a, m, 0, 1, nil)
	return dst
}

// MulBT returns m * bᵀ as a new matrix: out[i][j] = Σ_k m[i][k]·b[j][k].
// Both operands are walked along contiguous rows, which makes this the
// natural kernel for batched layer forwards (X · Wᵀ).
func (m *Dense) MulBT(b *Dense) *Dense {
	out := NewDense(m.rows, b.rows)
	m.MulBTInto(b, out)
	return out
}

// MulBTInto computes dst = m * bᵀ into dst, which must be m.Rows() by
// b.Rows() and must not alias m or b. It returns dst. It is
// MulBTIntoEpilogue with no epilogue.
func (m *Dense) MulBTInto(b, dst *Dense) *Dense {
	return m.MulBTIntoEpilogue(b, dst, nil)
}

// MulInto computes dst = m * b into dst, which must be m.Rows() by b.Cols()
// and must not alias m or b. It returns dst. B is packed transposed into a
// pooled scratch buffer so the inner kernel runs on contiguous rows.
func (m *Dense) MulInto(b, dst *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	if dst.rows != m.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto dst %dx%d, want %dx%d", dst.rows, dst.cols, m.rows, b.cols))
	}
	checkNoAlias("MulInto", dst, m, b)
	bt := getScratchDense(b.cols, b.rows)
	for i := 0; i < b.rows; i++ {
		row := b.data[i*b.cols : (i+1)*b.cols]
		for j, v := range row {
			bt.data[j*bt.cols+i] = v
		}
	}
	flops := m.rows * m.cols * b.cols
	if w := workers(); w > 1 && flops >= parallelFlopCutoff && m.rows > 1 {
		parallelRows(m.rows, w, func(lo, hi int) { gemmBT(dst, m, bt, lo, hi, nil) })
	} else {
		gemmBT(dst, m, bt, 0, m.rows, nil)
	}
	putScratchDense(bt)
	return dst
}

// MulAT returns mᵀ * b as a new matrix: out[i][j] = Σ_k m[k][i]·b[k][j].
// The shared k dimension is the row dimension of both operands, which makes
// this the natural kernel for batched backprop weight gradients
// (dW = deltaᵀ · activations, summed over the mini-batch).
func (m *Dense) MulAT(b *Dense) *Dense {
	out := NewDense(m.cols, b.cols)
	m.MulATInto(b, out)
	return out
}

// MulATInto computes dst = mᵀ * b into dst, which must be m.Cols() by
// b.Cols() and must not alias m or b. Both operands are packed transposed
// into pooled scratch so the blocked kernel — including the packed
// microkernel of the active tier — runs on contiguous rows; the transpose
// packing is what routes this call onto the same vector path as MulBTInto.
// Every output element is one ascending-k mul-then-add chain over the shared
// row dimension — the same order a per-sample accumulation loop over rows
// 0,1,2,… uses — so batched gradient sums are bit-identical to sequential
// per-sample accumulation. It returns dst.
func (m *Dense) MulATInto(b, dst *Dense) *Dense {
	if m.rows != b.rows {
		panic(fmt.Sprintf("mat: MulAT (%dx%d)ᵀ by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	if dst.rows != m.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulATInto dst %dx%d, want %dx%d", dst.rows, dst.cols, m.cols, b.cols))
	}
	checkNoAlias("MulATInto", dst, m, b)
	at := getScratchDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			at.data[j*at.cols+i] = v
		}
	}
	bt := getScratchDense(b.cols, b.rows)
	for i := 0; i < b.rows; i++ {
		row := b.data[i*b.cols : (i+1)*b.cols]
		for j, v := range row {
			bt.data[j*bt.cols+i] = v
		}
	}
	flops := m.cols * m.rows * b.cols
	if w := workers(); w > 1 && flops >= parallelFlopCutoff && at.rows > 1 {
		parallelRows(at.rows, w, func(lo, hi int) { gemmBT(dst, at, bt, lo, hi, nil) })
	} else {
		gemmBT(dst, at, bt, 0, at.rows, nil)
	}
	putScratchDense(bt)
	putScratchDense(at)
	return dst
}

// checkNoAlias panics when dst shares backing storage with an operand;
// the kernels write dst while still reading the operands.
func checkNoAlias(op string, dst *Dense, operands ...*Dense) {
	if len(dst.data) == 0 {
		return
	}
	for _, o := range operands {
		if len(o.data) > 0 && &o.data[0] == &dst.data[0] {
			panic("mat: " + op + " dst aliases an operand")
		}
	}
}

// parallelRows splits [0, rows) into one contiguous span per worker and runs
// work on each concurrently. Spans are aligned to the 4-row register tile so
// every tile stays within one worker. (An AVX-512 8-row tile split across a
// span boundary simply reforms as two 4-row tiles — same chains, same bits.)
func parallelRows(rows, w int, work func(lo, hi int)) {
	if w > rows {
		w = rows
	}
	per := (rows + w - 1) / w
	per = (per + 3) &^ 3 // align spans to the 4-row tile
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += per {
		hi := lo + per
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			work(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmBT fills dst rows [i0, i1) with a · bᵀ and, when epi is non-nil,
// applies the fused epilogue to each row block as soon as its accumulator
// chains have committed — while the block is still cache-hot. The dispatch
// ladder runs highest active tier first (8-row AVX-512 pack, then the 4-row
// AVX2/NEON pack, then pure-Go 4x2 register tiles, then single rows with a
// 4-wide column tail); lower rungs pick up the row remainders of higher
// ones. Every schedule evaluates every output element as one ascending-k
// mul-then-add chain, so the bits match on all of them.
func gemmBT(dst, a, b *Dense, i0, i1 int, epi *Epilogue) {
	k := a.cols
	n := b.rows
	i := i0
	tier := ActiveKernelTier()
	if tier >= TierAVX512 && k > 0 && n > 0 && i+8 <= i1 {
		sp := getScratch(8 * k)
		pack := (*sp)[:8*k]
		var out [32]float64
		for ; i+8 <= i1; i += 8 {
			packEightRows(pack, a, i)
			var d [8][]float64
			for l := range d {
				d[l] = dst.data[(i+l)*dst.cols : (i+l)*dst.cols+dst.cols]
			}
			j := 0
			for ; j+4 <= n; j += 4 {
				dotPack8x4(&pack[0],
					&b.data[(j+0)*k], &b.data[(j+1)*k], &b.data[(j+2)*k], &b.data[(j+3)*k],
					k, &out)
				for l, dl := range d {
					dl[j], dl[j+1], dl[j+2], dl[j+3] = out[l], out[8+l], out[16+l], out[24+l]
				}
			}
			for ; j < n; j++ {
				br := b.data[j*k : j*k+k]
				var s0, s1, s2, s3, s4, s5, s6, s7 float64
				for t, bv := range br {
					p := pack[8*t : 8*t+8 : 8*t+8]
					s0 += p[0] * bv
					s1 += p[1] * bv
					s2 += p[2] * bv
					s3 += p[3] * bv
					s4 += p[4] * bv
					s5 += p[5] * bv
					s6 += p[6] * bv
					s7 += p[7] * bv
				}
				d[0][j], d[1][j], d[2][j], d[3][j] = s0, s1, s2, s3
				d[4][j], d[5][j], d[6][j], d[7][j] = s4, s5, s6, s7
			}
			applyEpilogueRows(dst, epi, i, i+8)
		}
		putScratch(sp)
	}
	if tier >= TierNEON && k > 0 && n > 0 && i+4 <= i1 {
		sp := getScratch(4 * k)
		pack := (*sp)[:4*k]
		var out [16]float64
		for ; i+4 <= i1; i += 4 {
			packFourRows(pack, a, i)
			d0 := dst.data[(i+0)*dst.cols : (i+0)*dst.cols+dst.cols]
			d1 := dst.data[(i+1)*dst.cols : (i+1)*dst.cols+dst.cols]
			d2 := dst.data[(i+2)*dst.cols : (i+2)*dst.cols+dst.cols]
			d3 := dst.data[(i+3)*dst.cols : (i+3)*dst.cols+dst.cols]
			j := 0
			for ; j+4 <= n; j += 4 {
				dotPack4x4(&pack[0],
					&b.data[(j+0)*k], &b.data[(j+1)*k], &b.data[(j+2)*k], &b.data[(j+3)*k],
					k, &out)
				d0[j], d0[j+1], d0[j+2], d0[j+3] = out[0], out[4], out[8], out[12]
				d1[j], d1[j+1], d1[j+2], d1[j+3] = out[1], out[5], out[9], out[13]
				d2[j], d2[j+1], d2[j+2], d2[j+3] = out[2], out[6], out[10], out[14]
				d3[j], d3[j+1], d3[j+2], d3[j+3] = out[3], out[7], out[11], out[15]
			}
			for ; j < n; j++ {
				br := b.data[j*k : j*k+k]
				var s0, s1, s2, s3 float64
				for t, bv := range br {
					p := pack[4*t : 4*t+4 : 4*t+4]
					s0 += p[0] * bv
					s1 += p[1] * bv
					s2 += p[2] * bv
					s3 += p[3] * bv
				}
				d0[j], d1[j], d2[j], d3[j] = s0, s1, s2, s3
			}
			applyEpilogueRows(dst, epi, i, i+4)
		}
		putScratch(sp)
	}
	for ; i+4 <= i1; i += 4 {
		a0 := a.data[(i+0)*k : (i+0)*k+k]
		a1 := a.data[(i+1)*k : (i+1)*k+k]
		a2 := a.data[(i+2)*k : (i+2)*k+k]
		a3 := a.data[(i+3)*k : (i+3)*k+k]
		d0 := dst.data[(i+0)*dst.cols : (i+0)*dst.cols+dst.cols]
		d1 := dst.data[(i+1)*dst.cols : (i+1)*dst.cols+dst.cols]
		d2 := dst.data[(i+2)*dst.cols : (i+2)*dst.cols+dst.cols]
		d3 := dst.data[(i+3)*dst.cols : (i+3)*dst.cols+dst.cols]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b.data[(j+0)*k : (j+0)*k+k]
			// Reslicing every operand to len(b0) lets the compiler drop the
			// bounds checks in the hot loop below.
			b1 := b.data[(j+1)*k : (j+1)*k+k][:len(b0)]
			x0, x1, x2, x3 := a0[:len(b0)], a1[:len(b0)], a2[:len(b0)], a3[:len(b0)]
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			for t, bv0 := range b0 {
				bv1 := b1[t]
				av := x0[t]
				s00 += av * bv0
				s01 += av * bv1
				av = x1[t]
				s10 += av * bv0
				s11 += av * bv1
				av = x2[t]
				s20 += av * bv0
				s21 += av * bv1
				av = x3[t]
				s30 += av * bv0
				s31 += av * bv1
			}
			d0[j], d0[j+1] = s00, s01
			d1[j], d1[j+1] = s10, s11
			d2[j], d2[j+1] = s20, s21
			d3[j], d3[j+1] = s30, s31
		}
		if j < n {
			b0 := b.data[j*k : j*k+k]
			x0, x1, x2, x3 := a0[:len(b0)], a1[:len(b0)], a2[:len(b0)], a3[:len(b0)]
			var s0, s1, s2, s3 float64
			for t, bv := range b0 {
				s0 += x0[t] * bv
				s1 += x1[t] * bv
				s2 += x2[t] * bv
				s3 += x3[t] * bv
			}
			d0[j], d1[j], d2[j], d3[j] = s0, s1, s2, s3
		}
		applyEpilogueRows(dst, epi, i, i+4)
	}
	for ; i < i1; i++ {
		ar := a.data[i*k : i*k+k]
		drow := dst.data[i*dst.cols : i*dst.cols+dst.cols]
		j := 0
		// The 1-row tile: four B rows at once, four independent accumulator
		// chains — one per output element — so a single row (MulVecInto, the
		// row remainder of a batch) still hides the add latency.
		for ; j+4 <= n; j += 4 {
			b0 := b.data[(j+0)*k : (j+0)*k+k]
			b1 := b.data[(j+1)*k : (j+1)*k+k][:len(b0)]
			b2 := b.data[(j+2)*k : (j+2)*k+k][:len(b0)]
			b3 := b.data[(j+3)*k : (j+3)*k+k][:len(b0)]
			x := ar[:len(b0)]
			var s0, s1, s2, s3 float64
			for t, av := range x {
				s0 += av * b0[t]
				s1 += av * b1[t]
				s2 += av * b2[t]
				s3 += av * b3[t]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			br := b.data[j*k : j*k+k]
			x := ar[:len(br)]
			var s float64
			for t, bv := range br {
				s += x[t] * bv
			}
			drow[j] = s
		}
		applyEpilogueRows(dst, epi, i, i+1)
	}
}

// packFourRows interleaves rows i..i+3 of a feature-major: pack[4t+l] =
// a[i+l][t], the layout the 4-row vector microkernel consumes with one load
// per shared k step.
func packFourRows(pack []float64, a *Dense, i int) {
	k := a.cols
	a0 := a.data[(i+0)*k : (i+0)*k+k]
	a1 := a.data[(i+1)*k : (i+1)*k+k][:k]
	a2 := a.data[(i+2)*k : (i+2)*k+k][:k]
	a3 := a.data[(i+3)*k : (i+3)*k+k][:k]
	for t, v := range a0 {
		p := pack[4*t : 4*t+4 : 4*t+4]
		p[0] = v
		p[1] = a1[t]
		p[2] = a2[t]
		p[3] = a3[t]
	}
}

// packEightRows interleaves rows i..i+7 feature-major: pack[8t+l] =
// a[i+l][t], one 64-byte ZMM load per shared k step for the AVX-512
// microkernel.
func packEightRows(pack []float64, a *Dense, i int) {
	k := a.cols
	a0 := a.data[(i+0)*k : (i+0)*k+k]
	a1 := a.data[(i+1)*k : (i+1)*k+k][:k]
	a2 := a.data[(i+2)*k : (i+2)*k+k][:k]
	a3 := a.data[(i+3)*k : (i+3)*k+k][:k]
	a4 := a.data[(i+4)*k : (i+4)*k+k][:k]
	a5 := a.data[(i+5)*k : (i+5)*k+k][:k]
	a6 := a.data[(i+6)*k : (i+6)*k+k][:k]
	a7 := a.data[(i+7)*k : (i+7)*k+k][:k]
	for t, v := range a0 {
		p := pack[8*t : 8*t+8 : 8*t+8]
		p[0] = v
		p[1] = a1[t]
		p[2] = a2[t]
		p[3] = a3[t]
		p[4] = a4[t]
		p[5] = a5[t]
		p[6] = a6[t]
		p[7] = a7[t]
	}
}
