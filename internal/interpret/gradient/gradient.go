// Package gradient implements the three white-box baselines of the paper's
// Figure 3/4 comparison — Saliency Maps (Simonyan et al.), Gradient*Input
// (Shrikumar et al.), and Integrated Gradients (Sundararajan et al.). They
// require the network parameters (the very thing an API hides), which is
// exactly the contrast the paper draws: OpenAPI matches or beats them with
// API access only.
package gradient

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
	"repro/internal/sample"
)

// Method selects which gradient attribution is computed.
type Method int

const (
	// Saliency is |∂ score_c / ∂x| (absolute, unsigned).
	Saliency Method = iota
	// GradientInput is (∂ score_c / ∂x) ⊙ x (signed).
	GradientInput
	// IntegratedGradients averages gradients on the straight path from a
	// baseline to x and multiplies by (x − baseline).
	IntegratedGradients
	// SmoothGrad (Smilkov et al., 2017; cited in the paper's related work)
	// averages gradients over Gaussian perturbations of x, visually
	// de-noising the sensitivity map.
	SmoothGrad
)

// String returns the method's display name.
func (m Method) String() string {
	switch m {
	case Saliency:
		return "SaliencyMaps"
	case GradientInput:
		return "Gradient*Input"
	case IntegratedGradients:
		return "IntegratedGradient"
	case SmoothGrad:
		return "SmoothGrad"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Config controls the gradient interpreters.
type Config struct {
	Method Method
	// Steps is the Riemann resolution of Integrated Gradients and the
	// sample count of SmoothGrad. Default 32.
	Steps int
	// Baseline is the IG reference point; nil means the all-zeros vector
	// (the black image), as in the original paper.
	Baseline mat.Vec
	// NoiseSD is SmoothGrad's Gaussian noise scale. Default 0.1.
	NoiseSD float64
	// Seed seeds SmoothGrad's noise when RNG is nil.
	Seed int64
	// RNG, when non-nil, supplies SmoothGrad's noise.
	RNG *rand.Rand
}

// GradFunc returns the gradient of class c's score with respect to x.
type GradFunc func(x mat.Vec, c int) (mat.Vec, error)

// Interpreter computes gradient attributions. It is white-box: the gradient
// source must be supplied at construction, and Interpret verifies that the
// model argument (when given) describes the same shapes.
type Interpreter struct {
	grad    GradFunc
	dim     int
	classes int
	cfg     Config
}

// New returns a gradient interpreter over a ReLU network, differentiating
// the class logits by backprop.
func New(net *nn.Network, cfg Config) *Interpreter {
	return newInterpreter(func(x mat.Vec, c int) (mat.Vec, error) {
		return net.InputGradient(x, c), nil
	}, net.InputDim(), net.Classes(), cfg)
}

// NewFromRegionModel returns a gradient interpreter over any white-box PLM:
// the gradient of class c's logit at x is row c of the local classifier's
// weight matrix. For a PLNN this coincides with backprop; for an LMT it is
// the leaf classifier's weight row.
func NewFromRegionModel(m plm.RegionModel, cfg Config) *Interpreter {
	return newInterpreter(func(x mat.Vec, c int) (mat.Vec, error) {
		local, err := m.LocalAt(x)
		if err != nil {
			return nil, err
		}
		return local.W.Row(c), nil
	}, m.Dim(), m.Classes(), cfg)
}

func newInterpreter(grad GradFunc, dim, classes int, cfg Config) *Interpreter {
	if cfg.Steps <= 0 {
		cfg.Steps = 32
	}
	if cfg.NoiseSD <= 0 {
		cfg.NoiseSD = 0.1
	}
	if cfg.RNG == nil {
		cfg.RNG = rand.New(rand.NewSource(cfg.Seed))
	}
	return &Interpreter{grad: grad, dim: dim, classes: classes, cfg: cfg}
}

var _ plm.Interpreter = (*Interpreter)(nil)

// Name implements plm.Interpreter.
func (g *Interpreter) Name() string { return g.cfg.Method.String() }

// Interpret computes the attribution of class c's logit at x0. The model
// argument is only shape-checked: gradients come from the stored source.
func (g *Interpreter) Interpret(model plm.Model, x0 mat.Vec, c int) (*plm.Interpretation, error) {
	if model != nil && (model.Dim() != g.dim || model.Classes() != g.classes) {
		return nil, fmt.Errorf("gradient: model shape %dx%d does not match source %dx%d",
			model.Dim(), model.Classes(), g.dim, g.classes)
	}
	if len(x0) != g.dim {
		return nil, fmt.Errorf("gradient: instance length %d != %d", len(x0), g.dim)
	}
	if c < 0 || c >= g.classes {
		return nil, fmt.Errorf("gradient: class %d out of range [0,%d)", c, g.classes)
	}

	var features mat.Vec
	switch g.cfg.Method {
	case Saliency:
		grad, err := g.grad(x0, c)
		if err != nil {
			return nil, err
		}
		features = grad
		for i, v := range features {
			if v < 0 {
				features[i] = -v
			}
		}
	case GradientInput:
		grad, err := g.grad(x0, c)
		if err != nil {
			return nil, err
		}
		features = grad
		for i := range features {
			features[i] *= x0[i]
		}
	case IntegratedGradients:
		baseline := g.cfg.Baseline
		if baseline == nil {
			baseline = mat.NewVec(len(x0))
		}
		if len(baseline) != len(x0) {
			return nil, fmt.Errorf("gradient: baseline length %d != %d", len(baseline), len(x0))
		}
		path := sample.LinearPath(baseline, x0, g.cfg.Steps)
		avg := mat.NewVec(len(x0))
		// Left Riemann sum over the path, matching the published
		// implementation.
		for _, p := range path[:len(path)-1] {
			grad, err := g.grad(p, c)
			if err != nil {
				return nil, err
			}
			avg.AddInPlace(grad)
		}
		avg.ScaleInPlace(1 / float64(len(path)-1))
		features = avg
		for i := range features {
			features[i] *= x0[i] - baseline[i]
		}
	case SmoothGrad:
		avg := mat.NewVec(len(x0))
		for s := 0; s < g.cfg.Steps; s++ {
			noisy := x0.Clone()
			for i := range noisy {
				noisy[i] += g.cfg.NoiseSD * g.cfg.RNG.NormFloat64()
			}
			grad, err := g.grad(noisy, c)
			if err != nil {
				return nil, err
			}
			avg.AddInPlace(grad)
		}
		features = avg.ScaleInPlace(1 / float64(g.cfg.Steps))
	default:
		return nil, fmt.Errorf("gradient: unknown method %v", g.cfg.Method)
	}
	return &plm.Interpretation{
		Class:      c,
		Features:   features,
		Queries:    0, // white-box: no API calls
		Iterations: 1,
	}, nil
}
