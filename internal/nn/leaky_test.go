package nn

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/mat"
)

func TestSetLeakClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	n := New(rng, 2, 4, 2)
	if n.SetLeak(0.1).Leak() != 0.1 {
		t.Fatal("leak not set")
	}
	if n.SetLeak(-1).Leak() != 0 {
		t.Fatal("negative leak not clamped")
	}
	if n.SetLeak(2).Leak() != 0 {
		t.Fatal("leak >= 1 not clamped")
	}
}

func TestLeakyChangesNegativeSide(t *testing.T) {
	// A hand-built single-unit network: z1 = x, logits = (h, -h).
	w1 := mat.FromRows(mat.Vec{1})
	w2 := mat.FromRows(mat.Vec{1}, mat.Vec{-1})
	n := FromLayers(
		Layer{W: w1, B: mat.Vec{0}},
		Layer{W: w2, B: mat.Vec{0, 0}},
	).SetLeak(0.25)
	// Positive side: unchanged.
	if got := n.Logits(mat.Vec{2})[0]; got != 2 {
		t.Fatalf("positive side = %v", got)
	}
	// Negative side: scaled by 0.25 instead of clipped to 0.
	if got := n.Logits(mat.Vec{-2})[0]; got != -0.5 {
		t.Fatalf("negative side = %v, want -0.5", got)
	}
}

func TestLeakyInputGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := New(rng, 4, 6, 3).SetLeak(0.1)
	x := mat.Vec{0.3, -0.1, 0.7, 0.2}
	const h = 1e-6
	for c := 0; c < 3; c++ {
		g := n.InputGradient(x, c)
		for i := range x {
			xp, xm := x.Clone(), x.Clone()
			xp[i] += h
			xm[i] -= h
			fd := (n.Logits(xp)[c] - n.Logits(xm)[c]) / (2 * h)
			if math.Abs(fd-g[i]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("class %d dim %d: grad %v vs fd %v", c, i, g[i], fd)
			}
		}
	}
}

func TestLeakyTrainsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	xs, ys := xorData(rng, 60)
	n := New(rng, 2, 16, 2).SetLeak(0.05)
	if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 120, LearningRate: 0.05, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("leaky XOR accuracy = %v", acc)
	}
}

func TestLeakySerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	n := New(rng, 3, 5, 2).SetLeak(0.2)
	path := filepath.Join(t.TempDir(), "leaky.json")
	if err := n.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Leak() != 0.2 {
		t.Fatalf("leak lost: %v", loaded.Leak())
	}
	x := mat.Vec{-1, 0.5, -0.3} // exercises the negative side
	if !n.Logits(x).EqualApprox(loaded.Logits(x), 0) {
		t.Fatal("leaky network round trip changed outputs")
	}
}

func TestLeakyCloneKeepsSlope(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	n := New(rng, 2, 3, 2).SetLeak(0.3)
	if n.Clone().Leak() != 0.3 {
		t.Fatal("clone lost leak")
	}
}
