package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// awkwardFloats are the values a lossy or sloppy codec gets wrong: negative
// zero, denormals, extreme magnitudes, and values with no short decimal
// form. NaN and the infinities are exercised separately — JSON cannot carry
// them at all.
var awkwardFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0,
	math.MaxFloat64, -math.MaxFloat64,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	5e-324, 2.2250738585072014e-308, // denormal boundary
	1e300, -1e-300, math.Pi, math.Nextafter(1, 2),
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestCodecsRoundTripBitIdentical(t *testing.T) {
	m := [][]float64{awkwardFloats, awkwardFloats}
	for _, codec := range []Codec{JSON{}, Binary{}} {
		var buf bytes.Buffer
		if err := codec.EncodeVec(&buf, "probs", awkwardFloats); err != nil {
			t.Fatalf("%s EncodeVec: %v", codec.Name(), err)
		}
		v, err := codec.DecodeVec(&buf, 0, "probs")
		if err != nil {
			t.Fatalf("%s DecodeVec: %v", codec.Name(), err)
		}
		if !bitsEqual(v, awkwardFloats) {
			t.Fatalf("%s vector round trip changed bits: %v != %v", codec.Name(), v, awkwardFloats)
		}
		buf.Reset()
		if err := codec.EncodeMat(&buf, "xs", m); err != nil {
			t.Fatalf("%s EncodeMat: %v", codec.Name(), err)
		}
		got, err := codec.DecodeMat(&buf, 0, "xs")
		if err != nil {
			t.Fatalf("%s DecodeMat: %v", codec.Name(), err)
		}
		if len(got) != len(m) {
			t.Fatalf("%s matrix round trip: %d rows, want %d", codec.Name(), len(got), len(m))
		}
		for i := range m {
			if !bitsEqual(got[i], m[i]) {
				t.Fatalf("%s matrix row %d changed bits", codec.Name(), i)
			}
		}
	}
}

func TestBinaryCarriesNaNAndInf(t *testing.T) {
	// The binary frame carries raw IEEE-754 bits, so the values JSON cannot
	// express survive — including a quiet NaN's exact payload bits.
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	var buf bytes.Buffer
	if err := (Binary{}).EncodeVec(&buf, "", specials); err != nil {
		t.Fatal(err)
	}
	got, err := Binary{}.DecodeVec(&buf, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got, specials) {
		t.Fatalf("specials changed bits: %v != %v", got, specials)
	}
}

func TestJSONDecodeRejectsWrongEnvelope(t *testing.T) {
	for _, body := range []string{
		`{"x":[1],"y":[2]}`, // extra member
		`{"y":[1]}`,         // wrong member
	} {
		if _, err := (JSON{}).DecodeVec(strings.NewReader(body), 0, "x"); err == nil {
			t.Fatalf("envelope %s accepted for field x", body)
		}
	}
	// The exact field alone is fine, and null/absent mean an empty payload.
	for _, body := range []string{`{"x":[1,2]}`, `{"x":null}`, `{}`} {
		if _, err := (JSON{}).DecodeVec(strings.NewReader(body), 0, "x"); err != nil {
			t.Fatalf("envelope %s rejected: %v", body, err)
		}
	}
}

func TestDecodeVecRejectsMultiRowFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, [][]float64{{1}, {2}}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := (Binary{}).DecodeVec(&buf, 0, ""); err == nil {
		t.Fatal("two-row frame accepted as a vector")
	}
}

func TestWriteFrameRejectsRaggedRows(t *testing.T) {
	if err := WriteFrame(io.Discard, [][]float64{{1, 2}, {3}}, false); err == nil {
		t.Fatal("ragged frame written")
	}
}

func TestFloat32FramesAreHalfTheBytesAndSelfDescribing(t *testing.T) {
	row := []float64{1.5, -0.25, 1.0 / 3.0}
	var f64, f32 bytes.Buffer
	if err := WriteFrame(&f64, [][]float64{row}, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&f32, [][]float64{row}, true); err != nil {
		t.Fatal(err)
	}
	if want := frameHeader + 8*len(row); f64.Len() != want {
		t.Fatalf("f64 frame is %d bytes, want %d", f64.Len(), want)
	}
	if want := frameHeader + 4*len(row); f32.Len() != want {
		t.Fatalf("f32 frame is %d bytes, want %d", f32.Len(), want)
	}
	// Decoding honors the frame's own flag, not the decoder's preference,
	// and the payload is the float32 rounding of the source values.
	got, err := ReadFrame(&f32, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range row {
		if want := float64(float32(v)); got[0][j] != want {
			t.Fatalf("f32 element %d = %v, want %v", j, got[0][j], want)
		}
	}
}

// frameBytes builds a frame byte string with an arbitrary header.
func frameBytes(magic string, version, flags byte, reserved [2]byte, rows, cols uint32, payload []byte) []byte {
	b := make([]byte, frameHeader+len(payload))
	copy(b[:4], magic)
	b[4] = version
	b[5] = flags
	b[6], b[7] = reserved[0], reserved[1]
	binary.LittleEndian.PutUint32(b[8:], rows)
	binary.LittleEndian.PutUint32(b[12:], cols)
	copy(b[frameHeader:], payload)
	return b
}

func TestReadFrameRejectsMalformedHeaders(t *testing.T) {
	eight := make([]byte, 8)
	cases := map[string][]byte{
		"bad magic":        frameBytes("NOPE", FrameVersion, 0, [2]byte{}, 1, 1, eight),
		"bad version":      frameBytes(frameMagic, 9, 0, [2]byte{}, 1, 1, eight),
		"unknown flags":    frameBytes(frameMagic, FrameVersion, 0x80, [2]byte{}, 1, 1, eight),
		"nonzero reserved": frameBytes(frameMagic, FrameVersion, 0, [2]byte{1, 0}, 1, 1, eight),
		"truncated header": []byte(frameMagic + "\x01"),
		"truncated body":   frameBytes(frameMagic, FrameVersion, 0, [2]byte{}, 2, 3, eight),
	}
	for name, raw := range cases {
		_, err := ReadFrame(bytes.NewReader(raw), 0)
		if err == nil {
			t.Fatalf("%s accepted", name)
		}
		if errors.Is(err, ErrTooLarge) {
			t.Fatalf("%s misclassified as too large: %v", name, err)
		}
		if DecodeStatus(err) != http.StatusBadRequest {
			t.Fatalf("%s answers %d, want 400", name, DecodeStatus(err))
		}
	}
}

func TestReadFrameHostileDimsFailBeforeAllocation(t *testing.T) {
	cases := map[string][]byte{
		"huge payload":       frameBytes(frameMagic, FrameVersion, 0, [2]byte{}, math.MaxUint32, math.MaxUint32, nil),
		"zero-col huge rows": frameBytes(frameMagic, FrameVersion, 0, [2]byte{}, math.MaxUint32, 0, nil),
		"exceeds budget":     frameBytes(frameMagic, FrameVersion, 0, [2]byte{}, 1, 1000, nil),
	}
	for name, raw := range cases {
		_, err := ReadFrame(bytes.NewReader(raw), 1024)
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("%s: err = %v, want ErrTooLarge", name, err)
		}
		if DecodeStatus(err) != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s answers %d, want 413", name, DecodeStatus(err))
		}
	}
}

func TestZeroRowFrameWithHugeColsDecodesEmpty(t *testing.T) {
	// A zero-row frame carries no payload whatever its cols field claims;
	// the decoder must answer it without sizing a row buffer for it
	// (regression: this once attempted a cols×8-byte allocation).
	raw := frameBytes(frameMagic, FrameVersion, 0, [2]byte{}, 0, math.MaxUint32, nil)
	m, err := ReadFrame(bytes.NewReader(raw), 1024)
	if err != nil || len(m) != 0 {
		t.Fatalf("zero-row frame = %v rows, err %v", len(m), err)
	}
}

func TestFrameReaderStreamsUnderOneBudget(t *testing.T) {
	var buf bytes.Buffer
	frames := [][][]float64{{{1, 2}}, {{3, 4}, {5, 6}}, {}}
	for _, m := range frames {
		if err := WriteFrame(&buf, m, false); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf, 0)
	for i, want := range frames {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d has %d rows, want %d", i, len(got), len(want))
		}
		for r := range want {
			if !bitsEqual(got[r], want[r]) {
				t.Fatalf("frame %d row %d differs", i, r)
			}
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
	// The budget spans the whole stream: a second frame that would fit on
	// its own is refused once the first has spent the allowance.
	buf.Reset()
	_ = WriteFrame(&buf, [][]float64{awkwardFloats}, false)
	_ = WriteFrame(&buf, [][]float64{awkwardFloats}, false)
	fr = NewFrameReader(&buf, int64(frameHeader+8*len(awkwardFloats)+frameHeader))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-budget second frame = %v, want ErrTooLarge", err)
	}
}

func TestJSONBodyOverLimitAnswers413(t *testing.T) {
	big := `{"x":[` + strings.Repeat("1,", 600) + `1]}`
	_, err := (JSON{}).DecodeVec(strings.NewReader(big), 64, "x")
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if DecodeStatus(err) != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", DecodeStatus(err))
	}
	// A genuinely malformed body under the limit stays a 400.
	_, err = (JSON{}).DecodeVec(strings.NewReader(`{"x":[1,`), 64, "x")
	if err == nil || errors.Is(err, ErrTooLarge) {
		t.Fatalf("malformed body err = %v, want a non-size error", err)
	}
	if DecodeStatus(err) != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", DecodeStatus(err))
	}
}

func TestNegotiation(t *testing.T) {
	req := func(contentType, accept string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/predict", nil)
		if contentType != "" {
			r.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	cases := []struct {
		name                string
		contentType, accept string
		wantIn, wantOut     string
		wantF32             bool
	}{
		{"absent headers", "", "", NameJSON, NameJSON, false},
		{"legacy json", ContentTypeJSON, ContentTypeJSON, NameJSON, NameJSON, false},
		{"binary both ways", ContentTypeBinary, ContentTypeBinary, NameBinary, NameBinary, false},
		{"binary in accept list", ContentTypeJSON, "text/html, " + ContentTypeBinary + ", */*", NameJSON, NameBinary, false},
		{"f32 parameter", ContentTypeBinary, ContentTypeBinary + ";prec=f32", NameBinary, NameBinary, true},
		{"wildcard stays json", ContentTypeJSON, "*/*", NameJSON, NameJSON, false},
		{"garbage headers", "not/a;;;type", ";;;", NameJSON, NameJSON, false},
		{"charset parameter", ContentTypeJSON + "; charset=utf-8", "", NameJSON, NameJSON, false},
	}
	for _, tc := range cases {
		ex := NewExchange(req(tc.contentType, tc.accept), nil, 0)
		if got := ex.in.Name(); got != tc.wantIn {
			t.Fatalf("%s: request codec %s, want %s", tc.name, got, tc.wantIn)
		}
		if got := ex.out.Name(); got != tc.wantOut {
			t.Fatalf("%s: response codec %s, want %s", tc.name, got, tc.wantOut)
		}
		bin, ok := ex.BinaryOut()
		if ok != (tc.wantOut == NameBinary) || bin.Float32 != tc.wantF32 {
			t.Fatalf("%s: BinaryOut = %+v %v, want f32=%v", tc.name, bin, ok, tc.wantF32)
		}
	}
}

func TestAcceptValueAndResponseBodyCodec(t *testing.T) {
	if got := AcceptValue(JSON{}, true); got != ContentTypeJSON {
		t.Fatalf("json accept = %q", got)
	}
	if got := AcceptValue(Binary{}, false); got != ContentTypeBinary {
		t.Fatalf("binary accept = %q", got)
	}
	if got := AcceptValue(Binary{}, true); got != ContentTypeBinary+";prec=f32" {
		t.Fatalf("f32 accept = %q", got)
	}
	if got := ResponseBodyCodec(ContentTypeBinary + "; prec=f32").Name(); got != NameBinary {
		t.Fatalf("frame content type decoded as %s", got)
	}
	for _, ct := range []string{"", ContentTypeJSON, "text/plain", "garbage;;;"} {
		if got := ResponseBodyCodec(ct).Name(); got != NameJSON {
			t.Fatalf("content type %q decoded as %s, want json", ct, got)
		}
	}
}

func TestStatsCountingAndNilSafety(t *testing.T) {
	// Every method must be a safe no-op on a nil receiver — unmounted
	// runners carry a nil *Stats.
	var nilStats *Stats
	nilStats.AddBytesIn(5)
	nilStats.AddBytesOut(5)
	nilStats.CountRequest(true)
	if got := nilStats.Counts(); got != (Counts{}) {
		t.Fatalf("nil stats counts = %+v", got)
	}

	var s Stats
	s.AddBytesIn(10)
	s.AddBytesIn(-3) // negative deltas ignored
	s.AddBytesOut(7)
	s.CountRequest(true)
	s.CountRequest(false)
	s.CountRequest(false)
	want := Counts{BytesIn: 10, BytesOut: 7, BinaryRequests: 1, JSONRequests: 2}
	if got := s.Counts(); got != want {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}
}

func TestExchangeCountsPayloadBytes(t *testing.T) {
	var stats Stats
	body := `{"x":[1,2,3]}`
	r := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	r.Header.Set("Content-Type", ContentTypeJSON)
	ex := NewExchange(r, &stats, 0)
	if _, err := ex.ReadVec("x"); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	ex.WriteVec(rec, "probs", []float64{0.5, 0.5})
	c := stats.Counts()
	if c.BytesIn != int64(len(body)) {
		t.Fatalf("bytes_in = %d, want %d", c.BytesIn, len(body))
	}
	if c.BytesOut != int64(rec.Body.Len()) || c.BytesOut == 0 {
		t.Fatalf("bytes_out = %d, body = %d", c.BytesOut, rec.Body.Len())
	}
	if c.JSONRequests != 1 || c.BinaryRequests != 0 {
		t.Fatalf("request split = %+v", c)
	}
}
