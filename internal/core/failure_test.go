package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/api"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

// Failure-injection tests: how OpenAPI behaves when the API misbehaves.

func TestOpenAPICorruptedAPIDoesNotConverge(t *testing.T) {
	// A flaky API that replaces half the responses with uniform noise makes
	// the log-odds equations mutually inconsistent, so the consistency
	// check must keep rejecting and the run must exhaust its budget —
	// NOT return a confidently wrong answer.
	model := plnnModel(50, 5, 8, 3)
	flaky := api.NewFlaky(model, 0.5, rand.New(rand.NewSource(51)))
	o := New(Config{MaxIterations: 8, Seed: 52})
	rng := rand.New(rand.NewSource(53))
	_, err := o.Interpret(flaky, randVec(rng, 5), 0)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if flaky.Failures() == 0 {
		t.Fatal("fault injector never fired; test ineffective")
	}
}

func TestOpenAPIFullyDegradedAPIGivesNullInterpretation(t *testing.T) {
	// An API that always returns the uniform distribution *is* a valid PLM
	// (the constant classifier with D_c = 0). OpenAPI should converge and
	// report exactly that — all-zero decision features.
	model := plnnModel(54, 4, 6, 3)
	dead := api.NewFlaky(model, 1.0, rand.New(rand.NewSource(55)))
	o := New(Config{Seed: 56})
	rng := rand.New(rand.NewSource(57))
	got, err := o.Interpret(dead, randVec(rng, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features.NormInf() > 1e-9 {
		t.Fatalf("constant model should yield zero decision features, got %v", got.Features.NormInf())
	}
}

func TestOpenAPISaturatedRegion(t *testing.T) {
	// A model whose softmax is numerically saturated (probabilities hit 0
	// exactly) exercises the log-odds floor. The recovered features cannot
	// match the unobservable true weights, but the run must stay finite and
	// NaN-free.
	w := mat.FromRows(mat.Vec{2000, 0}, mat.Vec{-2000, 0})
	net := nn.FromLayers(nn.Layer{W: w, B: mat.Vec{0, 0}})
	model := &openbox.PLNN{Net: net}
	o := New(Config{Seed: 58, MaxIterations: 10})
	got, err := o.Interpret(model, mat.Vec{1, 0}, 0)
	if err != nil {
		// Saturation may legitimately prevent convergence; that is an
		// acceptable, honest outcome.
		if !errors.Is(err, ErrNoConvergence) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if got.Features.HasNaN() {
		t.Fatal("saturated interpretation contains NaN/Inf")
	}
}

// Ablation A3: the consistency tolerance is what separates "exact w.p. 1"
// from "confidently wrong".

func TestToleranceSweep(t *testing.T) {
	// quadModel (softmax of a quadratic) is not a PLM: no linear system is
	// ever truly consistent. A sane tolerance refuses to answer; an absurd
	// tolerance accepts garbage on the first iteration. This documents why
	// the check is load-bearing.
	x := mat.Vec{0.3, -0.2}
	strict := New(Config{MaxIterations: 5, Tolerance: 1e-8, Seed: 60})
	if _, err := strict.Interpret(quadModel{}, x, 0); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("strict tolerance accepted a non-PLM: %v", err)
	}
	sloppy := New(Config{MaxIterations: 5, Tolerance: 1e9, Seed: 61})
	got, err := sloppy.Interpret(quadModel{}, x, 0)
	if err != nil {
		t.Fatalf("absurd tolerance should accept anything: %v", err)
	}
	if got.Iterations != 1 {
		t.Fatalf("sloppy run took %d iterations, want immediate acceptance", got.Iterations)
	}
}

func TestTolerancePreservesExactnessOnRealPLM(t *testing.T) {
	// On a genuine PLM, tightening the tolerance by orders of magnitude
	// must not change the answer (the true solution's residual is at
	// round-off), only possibly the iteration count.
	model := plnnModel(62, 4, 8, 3)
	rng := rand.New(rand.NewSource(63))
	x := randVec(rng, 4)
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.DecisionFeatures(1)
	for _, tol := range []float64{1e-6, 1e-9, 1e-12} {
		o := New(Config{Tolerance: tol, Seed: 64})
		got, err := o.Interpret(model, x, 1)
		if err != nil {
			t.Fatalf("tol %g: %v", tol, err)
		}
		if dist := got.Features.L1Dist(want); dist > 1e-4 {
			t.Fatalf("tol %g: L1Dist %v", tol, dist)
		}
	}
}

func TestOpenAPIHighDimensional(t *testing.T) {
	// A paper-shaped sanity check at a larger dimension: d = 100 (the small
	// end of image scale) still converges and stays exact.
	if testing.Short() {
		t.Skip("short mode")
	}
	model := plnnModel(65, 100, 64, 32, 10)
	rng := rand.New(rand.NewSource(66))
	x := randVec(rng, 100)
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	c := model.Predict(x).ArgMax()
	o := New(Config{Seed: 67})
	got, err := o.Interpret(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if dist := got.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-3 {
		t.Fatalf("d=100 L1Dist = %v", dist)
	}
}
