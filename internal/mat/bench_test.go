package mat

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the solver kernels OpenAPI leans on; the d=257 and
// d=785 cases match the paper's image dimensionalities plus the bias column.

func benchSystem(b *testing.B, n int) (*Dense, Vec) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	a := randDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	rhs := make(Vec, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	return a, rhs
}

func benchLU(b *testing.B, n int) {
	a, rhs := benchSystem(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Factor(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.SolveVec(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUFactorSolve_n65(b *testing.B)  { benchLU(b, 65) }
func BenchmarkLUFactorSolve_n257(b *testing.B) { benchLU(b, 257) }
func BenchmarkLUFactorSolve_n785(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	benchLU(b, 785)
}

// The shared-RHS path: one factorization, many solves — OpenAPI's inner
// loop across class pairs.
func BenchmarkLUSolveOnly_n257(b *testing.B) {
	a, rhs := benchSystem(b, 257)
	f, err := Factor(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SolveVec(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQR(b *testing.B, rows, cols int) {
	rng := rand.New(rand.NewSource(int64(rows)))
	a := randDense(rng, rows, cols)
	rhs := make(Vec, rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := FactorQR(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.SolveVec(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRLeastSquares_130x65(b *testing.B)  { benchQR(b, 130, 65) }
func BenchmarkQRLeastSquares_514x257(b *testing.B) { benchQR(b, 514, 257) }

func BenchmarkMulVec_257(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 257, 257)
	x := make(Vec, 257)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x)
	}
}

// GEMM kernels (PR 3): the blocked/vectorized Mul-family the batched
// forward and the closed-form composition chain run on.

func benchGEMMPair(b *testing.B, m, k, n int) (*Dense, *Dense) {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	return randDense(rng, m, k), randDense(rng, k, n)
}

func BenchmarkMul_256x784x256(b *testing.B) {
	x, w := benchGEMMPair(b, 256, 784, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(w)
	}
}

func BenchmarkMulBT_256x784x256(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := randDense(rng, 256, 784)
	w := randDense(rng, 256, 784) // batched layer forward shape: X · Wᵀ
	dst := NewDense(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulBTInto(w, dst)
	}
}

// Fused epilogues + kernel tiers (PR 9): the batched layer forward's GEMM
// with bias add, activity-mask capture and activation fused into the row
// blocks, running at the machine's best tier.

func benchEpilogueSetup(b *testing.B) (x, w, dst *Dense, epi *Epilogue) {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	x = randDense(rng, 256, 784)
	w = randDense(rng, 256, 784)
	dst = NewDense(256, 256)
	bias := make(Vec, 256)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	epi = &Epilogue{Bias: bias, Act: ActLeakyReLU, Leak: 0.01, Mask: make([]bool, 256*256)}
	return x, w, dst, epi
}

func BenchmarkMulEpilogue_256x784x256(b *testing.B) {
	x, w, dst, epi := benchEpilogueSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulBTIntoEpilogue(w, dst, epi)
	}
}

// The serial variant makes the fused path's steady-state allocation count
// visible (0 allocs/op into pooled scratch); the parallel variant's only
// allocations are its per-call worker goroutines.
func BenchmarkMulEpilogueSerial_256x784x256(b *testing.B) {
	x, w, dst, epi := benchEpilogueSetup(b)
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	x.MulBTIntoEpilogue(w, dst, epi) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulBTIntoEpilogue(w, dst, epi)
	}
}

// BenchmarkMulNaive_256x784x256 is the pre-PR-3 triple loop, kept as the
// baseline the blocked kernel is measured against.
func BenchmarkMulNaive_256x784x256(b *testing.B) {
	x, w := benchGEMMPair(b, 256, 784, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := NewDense(x.Rows(), w.Cols())
		for r := 0; r < x.Rows(); r++ {
			orow := out.RawRow(r)
			for t := 0; t < x.Cols(); t++ {
				a := x.At(r, t)
				if a == 0 {
					continue
				}
				brow := w.RawRow(t)
				for j, bv := range brow {
					orow[j] += a * bv
				}
			}
		}
	}
}
