// Package naive implements the paper's §IV-B strawman: solve the determined
// system Ω_{d+1} built from x0 and d perturbed instances at a *fixed*
// perturbation distance h, with no consistency check. It is exact when every
// sampled point happens to share x0's locally linear region and arbitrarily
// wrong otherwise (Theorem 1) — which is precisely what Figures 5-7 measure.
package naive

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/sample"
)

// Config controls the naive interpreter.
type Config struct {
	// H is the fixed hypercube edge length (the paper evaluates 1e-8, 1e-4,
	// 1e-2). Default 1e-4.
	H float64
	// Seed seeds the sampler when RNG is nil.
	Seed int64
	// RNG, when non-nil, supplies all randomness.
	RNG *rand.Rand
	// MaxResample bounds retries when the sampled coefficient matrix is
	// numerically singular (probability 0 in theory). Default 5.
	MaxResample int
}

func (c *Config) setDefaults() {
	if c.H <= 0 {
		c.H = 1e-4
	}
	if c.RNG == nil {
		c.RNG = rand.New(rand.NewSource(c.Seed))
	}
	if c.MaxResample <= 0 {
		c.MaxResample = 5
	}
}

// Naive is the determined-system interpreter.
type Naive struct {
	cfg Config
}

// New returns a naive interpreter with the given configuration.
func New(cfg Config) *Naive {
	cfg.setDefaults()
	return &Naive{cfg: cfg}
}

var _ plm.Interpreter = (*Naive)(nil)

// Name implements plm.Interpreter.
func (n *Naive) Name() string { return fmt.Sprintf("Naive(h=%.0e)", n.cfg.H) }

// Interpret solves Ω_{d+1} once per class pair and averages into D_c.
// Unlike OpenAPI it never verifies the solution.
func (n *Naive) Interpret(model plm.Model, x0 mat.Vec, c int) (*plm.Interpretation, error) {
	n.cfg.setDefaults()
	d := model.Dim()
	C := model.Classes()
	if len(x0) != d {
		return nil, fmt.Errorf("naive: instance length %d != model dim %d", len(x0), d)
	}
	if c < 0 || c >= C {
		return nil, fmt.Errorf("naive: class %d out of range [0,%d)", c, C)
	}

	y0 := model.Predict(x0)
	queries := 1
	cube := sample.NewHypercube(x0, n.cfg.H)

	for attempt := 0; attempt < n.cfg.MaxResample; attempt++ {
		pts := cube.SampleN(n.cfg.RNG, d)
		eqX := append([]mat.Vec{x0}, pts...)
		ys := make([]mat.Vec, len(pts))
		for i, p := range pts {
			ys[i] = model.Predict(p)
		}
		queries += len(pts)
		eqY := append([]mat.Vec{y0}, ys...)

		a := mat.NewDense(d+1, d+1)
		for i, x := range eqX {
			row := a.RawRow(i)
			row[0] = 1
			copy(row[1:], x)
		}
		lu, err := mat.Factor(a)
		if err != nil {
			continue // singular draw: resample at the same h
		}
		diffs := make([]mat.Vec, C)
		biases := make([]float64, C)
		features := mat.NewVec(d)
		ok := true
		for cp := 0; cp < C && ok; cp++ {
			if cp == c {
				continue
			}
			rhs := make(mat.Vec, d+1)
			for i := range eqX {
				rhs[i] = plm.LogOdds(eqY[i], c, cp)
			}
			beta, err := lu.SolveVec(rhs)
			if err != nil || mat.Vec(beta).HasNaN() {
				ok = false
				break
			}
			diffs[cp] = mat.Vec(beta[1:])
			biases[cp] = beta[0]
			features.AddInPlace(diffs[cp])
		}
		if !ok {
			continue
		}
		features.ScaleInPlace(1 / float64(C-1))
		return &plm.Interpretation{
			Class:      c,
			Features:   features,
			PairDiffs:  diffs,
			Biases:     biases,
			Samples:    pts,
			Queries:    queries,
			Iterations: attempt + 1,
			FinalEdge:  n.cfg.H,
		}, nil
	}
	return nil, fmt.Errorf("naive: coefficient matrix singular after %d resamples", n.cfg.MaxResample)
}

// SamplePoints exposes the perturbation scheme so the evaluation harness can
// grade sample quality (Figures 5 and 6) without re-implementing it.
func (n *Naive) SamplePoints(x0 mat.Vec) []mat.Vec {
	n.cfg.setDefaults()
	cube := sample.NewHypercube(x0, n.cfg.H)
	return cube.SampleN(n.cfg.RNG, len(x0))
}
