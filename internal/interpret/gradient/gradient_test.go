package gradient

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func testNet(seed int64) *nn.Network {
	return nn.New(rand.New(rand.NewSource(seed)), 4, 8, 3)
}

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestSaliencyIsAbsGradient(t *testing.T) {
	net := testNet(1)
	rng := rand.New(rand.NewSource(2))
	x := randVec(rng, 4)
	g := New(net, Config{Method: Saliency})
	got, err := g.Interpret(nil, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	grad := net.InputGradient(x, 0)
	for i := range grad {
		if got.Features[i] != math.Abs(grad[i]) {
			t.Fatalf("dim %d: %v != |%v|", i, got.Features[i], grad[i])
		}
		if got.Features[i] < 0 {
			t.Fatal("saliency must be non-negative")
		}
	}
}

func TestGradientInput(t *testing.T) {
	net := testNet(3)
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, 4)
	g := New(net, Config{Method: GradientInput})
	got, err := g.Interpret(nil, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	grad := net.InputGradient(x, 1)
	for i := range grad {
		if diff := got.Features[i] - grad[i]*x[i]; math.Abs(diff) > 1e-12 {
			t.Fatalf("dim %d off by %v", i, diff)
		}
	}
}

func TestIntegratedGradientsCompleteness(t *testing.T) {
	// IG's completeness axiom: attributions sum to score(x) - score(baseline).
	// With a left Riemann sum over a piecewise linear path the residual is
	// bounded by the number of region crossings; use a generous tolerance.
	net := testNet(5)
	rng := rand.New(rand.NewSource(6))
	x := randVec(rng, 4)
	g := New(net, Config{Method: IntegratedGradients, Steps: 400})
	got, err := g.Interpret(nil, x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := net.Logits(x)[2] - net.Logits(mat.NewVec(4))[2]
	if diff := math.Abs(got.Features.Sum() - want); diff > 0.05*(1+math.Abs(want)) {
		t.Fatalf("completeness broken: sum %v vs %v", got.Features.Sum(), want)
	}
}

func TestIntegratedGradientsCustomBaseline(t *testing.T) {
	net := testNet(7)
	rng := rand.New(rand.NewSource(8))
	x := randVec(rng, 4)
	// Baseline equal to x: attributions must vanish.
	g := New(net, Config{Method: IntegratedGradients, Baseline: x.Clone()})
	got, err := g.Interpret(nil, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features.NormInf() > 1e-12 {
		t.Fatalf("zero path should give zero attributions: %v", got.Features)
	}
	// Wrong-length baseline rejected.
	bad := New(net, Config{Method: IntegratedGradients, Baseline: mat.Vec{1}})
	if _, err := bad.Interpret(nil, x, 0); err == nil {
		t.Fatal("bad baseline accepted")
	}
}

func TestGradientInsideRegionMatchesOpenBoxRow(t *testing.T) {
	// Inside a region the gradient of logit c is exactly row c of the
	// effective weight matrix.
	net := testNet(9)
	model := &openbox.PLNN{Net: net}
	rng := rand.New(rand.NewSource(10))
	x := randVec(rng, 4)
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	grad := net.InputGradient(x, 0)
	if !grad.EqualApprox(truth.W.Row(0), 1e-10) {
		t.Fatalf("gradient %v != W row %v", grad, truth.W.Row(0))
	}
}

func TestGradientValidation(t *testing.T) {
	net := testNet(11)
	g := New(net, Config{Method: Saliency})
	if _, err := g.Interpret(nil, mat.Vec{1}, 0); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := g.Interpret(nil, mat.Vec{1, 2, 3, 4}, 9); err == nil {
		t.Fatal("bad class accepted")
	}
	// Mismatched model shape rejected.
	other := &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(12)), 2, 3, 2)}
	if _, err := g.Interpret(other, mat.Vec{1, 2, 3, 4}, 0); err == nil {
		t.Fatal("mismatched model accepted")
	}
	// Matching model accepted.
	same := &openbox.PLNN{Net: net}
	if _, err := g.Interpret(same, mat.Vec{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	bad := New(net, Config{Method: Method(42)})
	if _, err := bad.Interpret(nil, mat.Vec{1, 2, 3, 4}, 0); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestMethodNames(t *testing.T) {
	if Saliency.String() != "SaliencyMaps" ||
		GradientInput.String() != "Gradient*Input" ||
		IntegratedGradients.String() != "IntegratedGradient" {
		t.Fatal("method names wrong")
	}
	net := testNet(13)
	if New(net, Config{Method: GradientInput}).Name() != "Gradient*Input" {
		t.Fatal("interpreter name wrong")
	}
}

func TestNewFromRegionModelMatchesBackprop(t *testing.T) {
	// The region-model gradient (row c of the local W) must equal backprop
	// for a PLNN, for every method.
	net := testNet(15)
	model := &openbox.PLNN{Net: net}
	rng := rand.New(rand.NewSource(16))
	x := randVec(rng, 4)
	for _, m := range []Method{Saliency, GradientInput, IntegratedGradients} {
		a := New(net, Config{Method: m, Steps: 64})
		b := NewFromRegionModel(model, Config{Method: m, Steps: 64})
		ia, err := a.Interpret(nil, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := b.Interpret(nil, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ia.Features.EqualApprox(ib.Features, 1e-9) {
			t.Fatalf("%v: backprop %v vs region-model %v", m, ia.Features, ib.Features)
		}
	}
}

func TestGradientZeroQueries(t *testing.T) {
	net := testNet(14)
	g := New(net, Config{Method: Saliency})
	got, err := g.Interpret(nil, mat.Vec{0.1, 0.2, 0.3, 0.4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Queries != 0 {
		t.Fatalf("white-box method reported %d queries", got.Queries)
	}
}
