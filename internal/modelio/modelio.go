// Package modelio dispatches saving and loading of the repository's model
// families by kind name. The CLI tools (plmtrain, plmserve, openapi) share
// it so every tool accepts the same -type values.
package modelio

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/lmt"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// Kind names accepted by Load.
const (
	KindPLNN   = "plnn"
	KindLMT    = "lmt"
	KindMaxout = "maxout"
)

// Kinds returns the supported kind names, sorted.
func Kinds() []string {
	out := []string{KindPLNN, KindLMT, KindMaxout}
	sort.Strings(out)
	return out
}

// Load reads a model of the given kind from path and returns it with
// white-box (RegionModel) access — every family in this repository can
// expose its ground truth.
func Load(path, kind string) (plm.RegionModel, error) {
	switch kind {
	case KindPLNN:
		net, err := nn.Load(path)
		if err != nil {
			return nil, err
		}
		return &openbox.PLNN{Net: net}, nil
	case KindLMT:
		return lmt.Load(path)
	case KindMaxout:
		net, err := nn.LoadMaxout(path)
		if err != nil {
			return nil, err
		}
		return &openbox.Maxout{Net: net}, nil
	}
	return nil, fmt.Errorf("modelio: unknown model kind %q (want one of %v)", kind, Kinds())
}

// LoadInstance reads a feature vector stored as a JSON number array — the
// instance format the openapi CLI consumes.
func LoadInstance(path string) (mat.Vec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: read %s: %w", path, err)
	}
	var x []float64
	if err := json.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("modelio: parse %s: %w", path, err)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("modelio: %s holds an empty instance", path)
	}
	return x, nil
}

// SaveInstance writes a feature vector as a JSON number array.
func SaveInstance(path string, x mat.Vec) error {
	data, err := json.Marshal([]float64(x))
	if err != nil {
		return fmt.Errorf("modelio: marshal instance: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("modelio: write %s: %w", path, err)
	}
	return nil
}
