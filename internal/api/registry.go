package api

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// The fleet registry turns the shard router into a control plane: workers
// announce themselves instead of being listed at boot, and silence is
// treated as death.
//
//	POST /register   {"addr":"http://host:port"} -> {"ttl_ms":T,"interval_ms":I}
//	POST /heartbeat  {"addr":"http://host:port"} -> {} (404: unknown, re-register)
//	POST /leave      {"addr":"http://host:port"} -> {}
//
// Registration dials the worker back (its /meta must answer and match the
// shard's model shape) and joins it as a remote backend; the response tells
// the worker how often to heartbeat (interval = TTL/3, so a member survives
// two lost beats). A member whose last beat is older than the TTL is
// expired: removed from the shard, its in-flight chunks cancelled and
// drained back onto the shared pull queue for the survivors. /stats grows a
// "registry" section counting joins, leaves and expiries so the fleet's
// churn is observable next to the per-backend counters.
//
// The control payloads ride the wire package's JSON envelopes — metadata
// always speaks JSON, exactly like /meta and /stats; the binary float-frame
// codec stays a payload optimization.
type Registry struct {
	shard *Shard
	cfg   RegistryConfig
	// now is the clock, swappable in tests (Sweep is driven manually there).
	now func() time.Time

	mu      sync.Mutex
	members map[string]*fleetMember
	// order lists member addresses in registration order — the iteration
	// spine, so snapshots and sweeps never depend on map order.
	order []string

	joins    atomic.Int64
	leaves   atomic.Int64
	expiries atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
}

// RegistryConfig tunes the registry. The zero value gives sensible defaults.
type RegistryConfig struct {
	// TTL is how long a member may stay silent before it is expired
	// (default 5s). The advertised heartbeat interval is TTL/3.
	TTL time.Duration
	// Dial turns a registering worker's advertised address into a Backend.
	// The default dials the address and wraps it as a remote backend; tests
	// substitute in-process fakes.
	Dial func(addr string) (Backend, error)
}

// fleetMember is the registry's record of one registered worker.
type fleetMember struct {
	addr     string
	joined   time.Time
	lastBeat time.Time
}

// RegistryStatus is the /stats registry section.
type RegistryStatus struct {
	// TTLMillis is the missed-heartbeat deadline members live under.
	TTLMillis int64 `json:"ttl_ms"`
	// Joins counts successful registrations (re-registrations included).
	Joins int64 `json:"joins"`
	// Leaves counts voluntary departures via /leave.
	Leaves int64 `json:"leaves"`
	// Expiries counts members removed for missing their heartbeat deadline.
	Expiries int64 `json:"expiries"`
	// Members lists the live fleet, stably ordered by address.
	Members []RegistryMember `json:"members"`
}

// RegistryMember is one live worker in the /stats registry section.
type RegistryMember struct {
	Addr string `json:"addr"`
	// SinceBeatMillis is how long ago the member last checked in.
	SinceBeatMillis int64 `json:"since_beat_ms"`
}

// registerRequest is the body of /register, /heartbeat and /leave alike:
// the worker's advertised base URL is the member key.
type registerRequest struct {
	Addr string `json:"addr"`
}

// registerResponse tells a registered worker its lease terms. Atlas
// advertises that the router serves a region-atlas snapshot at
// /atlas/snapshot, so a joining worker can pull a warm store instead of
// starting cold — the snapshot-on-join handshake.
type registerResponse struct {
	TTLMillis      int64 `json:"ttl_ms"`
	IntervalMillis int64 `json:"interval_ms"`
	Atlas          bool  `json:"atlas,omitempty"`
}

// NewRegistry builds a registry controlling the given shard's membership.
func NewRegistry(shard *Shard, cfg RegistryConfig) *Registry {
	if cfg.TTL <= 0 {
		cfg.TTL = 5 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (Backend, error) {
			client, err := Dial(addr, nil, 1)
			if err != nil {
				return nil, err
			}
			return NewRemoteBackend(client), nil
		}
	}
	return &Registry{
		shard:   shard,
		cfg:     cfg,
		now:     time.Now,
		members: make(map[string]*fleetMember),
		stop:    make(chan struct{}),
	}
}

// TTL returns the missed-heartbeat deadline members live under.
func (r *Registry) TTL() time.Duration { return r.cfg.TTL }

// Interval returns the heartbeat interval the registry advertises to
// workers: a third of the TTL, so a member survives two lost beats.
func (r *Registry) Interval() time.Duration { return r.cfg.TTL / 3 }

// Status snapshots the registry for the /stats report.
func (r *Registry) Status() RegistryStatus {
	members := r.snapshotMembers(r.now())
	sort.Slice(members, func(i, j int) bool { return members[i].Addr < members[j].Addr })
	return RegistryStatus{
		TTLMillis: r.cfg.TTL.Milliseconds(),
		Joins:     r.joins.Load(),
		Leaves:    r.leaves.Load(),
		Expiries:  r.expiries.Load(),
		Members:   members,
	}
}

// snapshotMembers copies the live member list in registration order.
func (r *Registry) snapshotMembers(now time.Time) []RegistryMember {
	r.mu.Lock()
	defer r.mu.Unlock()
	members := make([]RegistryMember, 0, len(r.order))
	for _, addr := range r.order {
		m, ok := r.members[addr]
		if !ok {
			continue
		}
		members = append(members, RegistryMember{
			Addr:            m.addr,
			SinceBeatMillis: now.Sub(m.lastBeat).Milliseconds(),
		})
	}
	return members
}

// Register joins a worker: dial its advertised address, validate it against
// the shard's model shape, and start its heartbeat lease. A worker already
// registered under the same address is replaced — the restarted-worker
// path — and counts as a fresh join.
func (r *Registry) Register(addr string) error {
	if addr == "" {
		return fmt.Errorf("api: register: empty addr")
	}
	// Dialing is a round trip to the worker; never hold the member lock (or
	// the shard's) across it.
	b, err := r.cfg.Dial(addr)
	if err != nil {
		return fmt.Errorf("api: register %s: %w", addr, err)
	}
	if err := r.shard.AddBackend(b); err != nil {
		return fmt.Errorf("api: register %s: %w", addr, err)
	}
	r.admit(addr, r.now())
	r.joins.Add(1)
	return nil
}

// admit records (or refreshes) a member under the lock.
func (r *Registry) admit(addr string, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.members[addr]; !known {
		r.order = append(r.order, addr)
	}
	r.members[addr] = &fleetMember{addr: addr, joined: now, lastBeat: now}
}

// dropOrderLocked removes addr from the registration-order spine; callers
// hold r.mu.
func (r *Registry) dropOrderLocked(addr string) {
	for i, a := range r.order {
		if a == addr {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// Heartbeat renews a member's lease. Unknown members report an error so the
// HTTP handler can answer 404 and the worker knows to re-register — the
// recovery path after an expiry or a router restart.
func (r *Registry) Heartbeat(addr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[addr]
	if !ok {
		return fmt.Errorf("api: heartbeat from unregistered %s", addr)
	}
	m.lastBeat = r.now()
	return nil
}

// Leave removes a member voluntarily. Reports whether it was registered.
func (r *Registry) Leave(addr string) bool {
	if !r.evict(addr) {
		return false
	}
	r.leaves.Add(1)
	r.shard.RemoveBackend(addr)
	return true
}

// evict deletes a member record under the lock, reporting whether it
// existed.
func (r *Registry) evict(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[addr]; !ok {
		return false
	}
	delete(r.members, addr)
	r.dropOrderLocked(addr)
	return true
}

// Sweep expires every member whose last heartbeat is older than the TTL,
// removing it from the shard (which cancels its in-flight chunks and drains
// them back to the queue). Returns the expired addresses. Start drives it
// on a ticker; fake-clock tests call it directly.
func (r *Registry) Sweep() []string {
	expired := r.expire(r.now())
	sort.Strings(expired)
	for _, addr := range expired {
		r.expiries.Add(1)
		r.shard.RemoveBackend(addr)
	}
	return expired
}

// expire deletes every member past its heartbeat deadline under the lock,
// walking the registration-order spine, and returns their addresses.
func (r *Registry) expire(now time.Time) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var expired, keep []string
	for _, addr := range r.order {
		m, ok := r.members[addr]
		if !ok {
			continue // record already gone; drop the stale spine entry too
		}
		if now.Sub(m.lastBeat) > r.cfg.TTL {
			expired = append(expired, addr)
			delete(r.members, addr)
			continue
		}
		keep = append(keep, addr)
	}
	r.order = keep
	return expired
}

// Start sweeps for expired members every TTL/4 until Stop. The divisor
// keeps expiry latency well under one TTL past the deadline.
func (r *Registry) Start() {
	ticker := time.NewTicker(r.cfg.TTL / 4)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				r.Sweep()
			}
		}
	}()
}

// Stop ends the sweep loop. Safe to call more than once.
func (r *Registry) Stop() { r.stopOnce.Do(func() { close(r.stop) }) }

// decodeControl reads one control envelope, answering the error itself.
func decodeControl(w http.ResponseWriter, req *http.Request) (registerRequest, bool) {
	var body registerRequest
	if err := wire.DecodeJSON(req.Body, clientMaxBody, &body, true); err != nil {
		wire.WriteError(w, wire.DecodeStatus(err), err)
		return body, false
	}
	if body.Addr == "" {
		wire.WriteError(w, http.StatusBadRequest, fmt.Errorf("api: missing addr"))
		return body, false
	}
	return body, true
}

// Mount attaches the registry's control endpoints to a server and hooks its
// section into the /stats report.
func (r *Registry) Mount(srv *Server) {
	srv.Handle("POST /register", func(w http.ResponseWriter, req *http.Request) {
		body, ok := decodeControl(w, req)
		if !ok {
			return
		}
		if err := r.Register(body.Addr); err != nil {
			// The worker's fault or the worker's outage either way: it can
			// retry, so answer 502 (we could not reach/validate it), not 500.
			wire.WriteError(w, http.StatusBadGateway, err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, registerResponse{
			TTLMillis:      r.cfg.TTL.Milliseconds(),
			IntervalMillis: r.Interval().Milliseconds(),
			// Late-bound on purpose: the atlas may be wired after Mount.
			Atlas: srv.atlasStatus != nil,
		})
	})
	srv.Handle("POST /heartbeat", func(w http.ResponseWriter, req *http.Request) {
		body, ok := decodeControl(w, req)
		if !ok {
			return
		}
		if err := r.Heartbeat(body.Addr); err != nil {
			wire.WriteError(w, http.StatusNotFound, err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, struct{}{})
	})
	srv.Handle("POST /leave", func(w http.ResponseWriter, req *http.Request) {
		body, ok := decodeControl(w, req)
		if !ok {
			return
		}
		r.Leave(body.Addr)
		wire.WriteJSON(w, http.StatusOK, struct{}{})
	})
	srv.statsExtras = append(srv.statsExtras, func(resp *statsResponse) {
		status := r.Status()
		resp.Registry = &status
	})
}

// FleetSession is the worker half of the registry protocol: register with
// the router, heartbeat at the advertised interval, re-register when the
// router forgets us (404 — we expired, or it restarted), and leave cleanly
// on shutdown. plmserve runs one per -join flag.
type FleetSession struct {
	// Router is the router's base URL (http://host:port).
	Router string
	// Advertise is this worker's own base URL, as the router should dial it.
	Advertise string
	// HTTPClient overrides the default client (30s timeout, shared keep-alive
	// transport).
	HTTPClient *http.Client
	// Logf, when set, receives session transitions (registered, lost lease,
	// leave) — plmserve points it at its logger.
	Logf func(format string, args ...any)
	// OnAtlas, when set, runs after every successful registration whose
	// lease advertises a router-side region atlas — the worker's chance to
	// pull a warm snapshot (GET router/atlas/snapshot → atlas.Ingest).
	// Called synchronously, so keep it bounded; ingestion dedups by key,
	// making repeat pulls after re-registration idempotent.
	OnAtlas func(ctx context.Context)
}

func (fs *FleetSession) client() *http.Client {
	if fs.HTTPClient != nil {
		return fs.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport}
}

func (fs *FleetSession) logf(format string, args ...any) {
	if fs.Logf != nil {
		fs.Logf(format, args...)
	}
}

// post ships one control envelope and decodes the response when out != nil.
func (fs *FleetSession) post(ctx context.Context, path string, out any) (int, error) {
	var buf bytes.Buffer
	if err := wire.EncodeJSON(&buf, registerRequest{Addr: fs.Advertise}); err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, fs.Router+path, &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeJSON)
	resp, err := fs.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("api: %s returned %s", path, resp.Status)
	}
	if out != nil {
		if err := wire.DecodeJSON(resp.Body, clientMaxBody, out, false); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// register joins the fleet and returns the router's heartbeat interval.
func (fs *FleetSession) register(ctx context.Context) (time.Duration, error) {
	var lease registerResponse
	if _, err := fs.post(ctx, "/register", &lease); err != nil {
		return 0, err
	}
	interval := time.Duration(lease.IntervalMillis) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	fs.logf("joined fleet at %s (heartbeat every %v)", fs.Router, interval)
	if lease.Atlas && fs.OnAtlas != nil {
		fs.OnAtlas(ctx)
	}
	return interval, nil
}

// Run registers and heartbeats until ctx ends, then leaves. Registration
// failures (the router may not be up yet) and lost beats retry on a steady
// cadence rather than giving up: a worker's job is to keep trying to be
// part of the fleet. Returns ctx's error on shutdown.
func (fs *FleetSession) Run(ctx context.Context) error {
	const retry = time.Second
	interval, err := fs.register(ctx)
	for err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		fs.logf("register with %s failed (will retry): %v", fs.Router, err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retry):
		}
		interval, err = fs.register(ctx)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Best-effort goodbye on a fresh short-lived context — ctx is
			// already dead and must not cancel the leave itself.
			lctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = fs.post(lctx, "/leave", nil)
			cancel()
			fs.logf("left fleet at %s", fs.Router)
			return ctx.Err()
		case <-ticker.C:
			status, err := fs.post(ctx, "/heartbeat", nil)
			if err == nil {
				continue
			}
			if status == http.StatusNotFound {
				// The router forgot us — we expired or it restarted. Rejoin
				// and adopt the (possibly changed) lease terms.
				fs.logf("lease lost at %s, re-registering", fs.Router)
				if next, rerr := fs.register(ctx); rerr == nil {
					ticker.Reset(next)
				}
				continue
			}
			if ctx.Err() == nil {
				fs.logf("heartbeat to %s failed: %v", fs.Router, err)
			}
		}
	}
}
