// Package extract implements the paper's stated future work (§VI): reverse
// engineering a PLM hidden behind an API. OpenAPI already recovers, for an
// instance x0, the complete core parameters {(D_{c,0}, B_{c,0})} of x0's
// locally linear region. Those determine the region's classifier exactly up
// to the softmax's inherent shift invariance:
//
//	softmax(W x + b) = softmax([0, D_{1,0}x + B_{1,0}, ..., D_{C-1,0}x + B_{C-1,0}])
//
// so one converged OpenAPI run yields a surrogate that predicts *bitwise the
// same distribution* as the hidden model everywhere in that region. A
// patchwork of such regions, harvested from probe instances, is a functional
// clone of the model on the probed parts of the input space.
//
// Guarantees: within the region of a harvested probe the surrogate is exact
// (w.p. 1, per the paper's Theorem 2). Region *assignment* of a fresh query
// is heuristic — the API does not expose region boundaries — and uses the
// nearest harvested probe; Verify reports how often that heuristic agrees
// with the hidden model on held-out instances.
package extract

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// Region is one harvested locally linear region: the probe that produced it
// and the classifier's logits relative to class 0.
type Region struct {
	Probe mat.Vec
	// RelW[c] and RelB[c] hold D_{c,0} and B_{c,0}; entry 0 is the zero
	// vector / zero scalar.
	RelW []mat.Vec
	RelB []float64
}

// Logits returns the region's relative logits [0, D_{1,0}x+B_1, ...].
func (r *Region) Logits(x mat.Vec) mat.Vec {
	out := make(mat.Vec, len(r.RelW))
	for c := 1; c < len(r.RelW); c++ {
		out[c] = r.RelW[c].Dot(x) + r.RelB[c]
	}
	return out
}

// Predict returns the region classifier's probabilities.
func (r *Region) Predict(x mat.Vec) mat.Vec { return nn.Softmax(r.Logits(x)) }

// Surrogate is a patchwork clone of a hidden PLM built from harvested
// regions. It implements plm.Model.
type Surrogate struct {
	dim     int
	classes int
	regions []*Region
}

var _ plm.Model = (*Surrogate)(nil)

// Dim returns the input dimensionality.
func (s *Surrogate) Dim() int { return s.dim }

// Classes returns the class count.
func (s *Surrogate) Classes() int { return s.classes }

// NumRegions returns how many regions have been harvested.
func (s *Surrogate) NumRegions() int { return len(s.regions) }

// Regions returns the harvested regions in harvest order. The slice and
// its entries are shared storage — treat them as read-only.
func (s *Surrogate) Regions() []*Region { return s.regions }

// nearestRegion picks the region whose probe is closest to x.
func (s *Surrogate) nearestRegion(x mat.Vec) *Region {
	var best *Region
	bestDist := 0.0
	for _, r := range s.regions {
		d := x.L2Dist(r.Probe)
		if best == nil || d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}

// Predict routes x to the nearest harvested region's exact classifier.
func (s *Surrogate) Predict(x mat.Vec) mat.Vec {
	r := s.nearestRegion(x)
	if r == nil {
		out := make(mat.Vec, s.classes)
		return out.Fill(1 / float64(s.classes))
	}
	return r.Predict(x)
}

// RegionAt returns the harvested region that would serve x, or nil.
func (s *Surrogate) RegionAt(x mat.Vec) *Region { return s.nearestRegion(x) }

// Extractor steals regions from a hidden model through its API.
type Extractor struct {
	cfg core.Config
	o   *core.OpenAPI
}

// New returns an extractor driven by the given OpenAPI configuration.
func New(cfg core.Config) *Extractor { return &Extractor{cfg: cfg, o: core.New(cfg)} }

// Harvest recovers the locally linear region around each probe and returns
// the assembled surrogate. Probes whose interpretation fails (e.g. exactly
// on a boundary) are skipped; an error is returned only when every probe
// fails.
func (e *Extractor) Harvest(model plm.Model, probes []mat.Vec) (*Surrogate, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("extract: no probes")
	}
	s := &Surrogate{dim: model.Dim(), classes: model.Classes()}
	var firstErr error
	for _, p := range probes {
		region, err := e.harvestOne(model, p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.regions = append(s.regions, region)
	}
	if len(s.regions) == 0 {
		return nil, fmt.Errorf("extract: all %d probes failed: %w", len(probes), firstErr)
	}
	return s, nil
}

func (e *Extractor) harvestOne(model plm.Model, probe mat.Vec) (*Region, error) {
	interp, err := e.o.Interpret(model, probe, 0)
	if err != nil {
		return nil, err
	}
	return regionFromInterp(probe, interp, model.Dim(), model.Classes())
}

// HarvestPool is Harvest on the concurrent fast path: probes are interpreted
// by a core.Pool of workers sharing one batched argmax pre-query, so the
// bulk extraction workload rides the same batching layers as every other
// pool job — wrap model in an api.Aggregator against a sharded remote and
// the whole harvest collapses into a few wide round trips. Each probe's one
// converged interpretation (of the predicted class) is reused for every
// class, InterpretAll-style, via the antisymmetry of the pair differences;
// no extra queries per class.
//
// Like Harvest, failed probes are skipped and an error is returned only when
// every probe fails. Results are deterministic for a fixed worker count.
func (e *Extractor) HarvestPool(model plm.Model, probes []mat.Vec, workers int) (*Surrogate, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("extract: no probes")
	}
	if workers <= 0 {
		workers = 1
	}
	pool := core.NewPool(e.cfg, workers)
	results := pool.InterpretMany(model, probes)
	s := &Surrogate{dim: model.Dim(), classes: model.Classes()}
	var firstErr error
	for i, res := range results {
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		region, err := regionFromInterp(probes[i], res.Interp, model.Dim(), model.Classes())
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.regions = append(s.regions, region)
	}
	if len(s.regions) == 0 {
		return nil, fmt.Errorf("extract: all %d probes failed: %w", len(probes), firstErr)
	}
	return s, nil
}

// HarvestExact builds the surrogate straight from a white-box model — the
// owner-side export path, with no API probing at all. Probes sharing a
// locally linear region collapse into one harvested Region: for a PLNN the
// activation patterns come from the batched GEMM forward and each distinct
// region's closed form is composed once through the region cache
// (openbox.RegionCache); other families answer through a RegionKey-keyed
// cache. The surrogate is exact on every probed region by construction.
func HarvestExact(model plm.RegionModel, probes []mat.Vec) (*Surrogate, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("extract: no probes")
	}
	for i, p := range probes {
		if len(p) != model.Dim() {
			return nil, fmt.Errorf("extract: probe %d length %d != %d", i, len(p), model.Dim())
		}
	}
	var lins []*plm.Linear
	if p, ok := model.(*openbox.PLNN); ok {
		// Batched patterns + one composition per distinct region.
		out, err := p.LocalAtAll(probes)
		if err != nil {
			return nil, err
		}
		lins = out
	} else {
		cached := openbox.CacheRegionModel(model, 0)
		lins = make([]*plm.Linear, len(probes))
		for i, probe := range probes {
			lin, err := cached.LocalAt(probe)
			if err != nil {
				return nil, err
			}
			lins[i] = lin
		}
	}
	s := &Surrogate{dim: model.Dim(), classes: model.Classes()}
	seen := make(map[string]bool, len(lins))
	for i, lin := range lins {
		key := lin.Key
		if key == "" {
			// A family that does not fingerprint its regions still dedupes
			// within this harvest via pointer identity from the cache.
			key = fmt.Sprintf("ptr-%p", lin)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		s.regions = append(s.regions, regionFromLinear(probes[i], lin))
	}
	return s, nil
}

// regionFromLinear rebases an absolute region classifier (W, b) onto the
// class-0-relative form a Region stores: RelW[c] = W_c − W_0 and
// RelB[c] = b_c − b_0, which predict the same distribution by softmax shift
// invariance.
func regionFromLinear(probe mat.Vec, lin *plm.Linear) *Region {
	C := lin.Classes()
	r := &Region{
		Probe: probe.Clone(),
		RelW:  make([]mat.Vec, C),
		RelB:  make([]float64, C),
	}
	w0 := lin.W.RawRow(0)
	r.RelW[0] = mat.NewVec(lin.Dim())
	for c := 1; c < C; c++ {
		r.RelW[c] = lin.W.Row(c).SubInPlace(w0)
		r.RelB[c] = lin.B[c] - lin.B[0]
	}
	return r
}

// regionFromInterp rebases one interpretation — of any class c* — onto the
// class-0-relative form a Region stores. With D_{c*,c'} = W_{c*} − W_{c'}
// from the interpretation, the wanted W_c − W_0 is D_{c*,0} − D_{c*,c}
// (and D_{c*,c*} = 0), so a single converged sample set yields the whole
// region classifier whatever class anchored it.
func regionFromInterp(probe mat.Vec, interp *plm.Interpretation, dim, C int) (*Region, error) {
	cs := interp.Class
	d0 := mat.NewVec(dim) // D_{c*,0}; zero when c* == 0
	var b0 float64
	if cs != 0 {
		if interp.PairDiffs[0] == nil {
			return nil, fmt.Errorf("extract: missing pair (%d,0)", cs)
		}
		d0 = interp.PairDiffs[0]
		b0 = interp.Biases[0]
	}
	r := &Region{
		Probe: probe.Clone(),
		RelW:  make([]mat.Vec, C),
		RelB:  make([]float64, C),
	}
	r.RelW[0] = mat.NewVec(dim)
	for c := 1; c < C; c++ {
		if c == cs {
			r.RelW[c] = d0.Clone()
			r.RelB[c] = b0
			continue
		}
		if interp.PairDiffs[c] == nil {
			return nil, fmt.Errorf("extract: missing pair (%d,%d)", cs, c)
		}
		r.RelW[c] = d0.Sub(interp.PairDiffs[c])
		r.RelB[c] = b0 - interp.Biases[c]
	}
	return r, nil
}

// Fidelity reports how well the surrogate mimics the hidden model on test
// instances: label agreement rate and the mean total-variation distance
// between the two predicted distributions.
type Fidelity struct {
	N              int
	LabelAgreement float64
	MeanTVDistance float64
}

// Verify measures surrogate fidelity against the (still hidden) model on the
// given instances, using only API calls.
func Verify(s *Surrogate, model plm.Model, xs []mat.Vec) (Fidelity, error) {
	if len(xs) == 0 {
		return Fidelity{}, fmt.Errorf("extract: no verification instances")
	}
	var agree int
	var tv float64
	for _, x := range xs {
		want := model.Predict(x)
		got := s.Predict(x)
		if want.ArgMax() == got.ArgMax() {
			agree++
		}
		var d float64
		for i := range want {
			diff := want[i] - got[i]
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		tv += d / 2
	}
	n := float64(len(xs))
	return Fidelity{
		N:              len(xs),
		LabelAgreement: float64(agree) / n,
		MeanTVDistance: tv / n,
	}, nil
}
